// BSG4Bot core machinery: pre-training, Algorithm 1, batching, semantic
// attention, the full model, and the plugin mode.
#include <set>

#include <gtest/gtest.h>

#include "core/biased_subgraph.h"
#include "core/bsg4bot.h"
#include "core/plugin.h"
#include "core/pretrain.h"
#include "core/semantic_attention.h"
#include "core/subgraph_batch.h"
#include "gradcheck.h"
#include "graph/homophily.h"
#include "test_common.h"
#include "train/trainer.h"

namespace bsg {
namespace {

using bsg::testing::ExpectGradientsMatch;
using bsg::testing::SmallGraph;

PretrainConfig FastPretrain() {
  PretrainConfig cfg;
  cfg.epochs = 40;
  cfg.hidden = 16;
  return cfg;
}

// Cached pre-training for the subgraph tests.
const PretrainResult& CachedPretrain() {
  static const PretrainResult* res =
      new PretrainResult(PretrainClassifier(SmallGraph(), FastPretrain()));
  return *res;
}

TEST(Pretrain, CoarseClassifierIsUseful) {
  const PretrainResult& res = CachedPretrain();
  EXPECT_GT(res.fit.accuracy, 0.7);  // "coarse but sufficient" (§III-C)
  EXPECT_EQ(res.hidden_reps.rows(), SmallGraph().num_nodes);
  EXPECT_EQ(res.hidden_reps.cols(), 16);
  EXPECT_EQ(res.probs.cols(), 2);
  EXPECT_GT(res.seconds, 0.0);
}

TEST(Pretrain, ProbabilitiesAreDistributions) {
  const PretrainResult& res = CachedPretrain();
  for (int i = 0; i < res.probs.rows(); ++i) {
    EXPECT_NEAR(res.probs(i, 0) + res.probs(i, 1), 1.0, 1e-9);
    EXPECT_GE(res.probs(i, 0), 0.0);
  }
}

TEST(Pretrain, SimilarityBoundsAndSelfSimilarity) {
  const PretrainResult& res = CachedPretrain();
  EXPECT_NEAR(NodeSimilarity(res.hidden_reps, 3, 3), 1.0, 1e-9);
  for (int j = 0; j < 50; ++j) {
    double s = NodeSimilarity(res.hidden_reps, 0, j);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(BiasedSubgraph, StructureInvariants) {
  const HeteroGraph& g = SmallGraph();
  BiasedSubgraphConfig cfg;
  cfg.k = 12;
  BiasedSubgraph sub =
      BuildBiasedSubgraph(g, CachedPretrain().hidden_reps, 5, cfg);
  EXPECT_EQ(sub.center, 5);
  ASSERT_EQ(sub.per_relation.size(), static_cast<size_t>(g.num_relations()));
  for (const RelationSubgraph& rel : sub.per_relation) {
    ASSERT_FALSE(rel.nodes.empty());
    EXPECT_EQ(rel.nodes[0], 5);                  // centre first
    EXPECT_LE(rel.nodes.size(), 13u);            // k + centre
    // Node ids unique.
    std::set<int> uniq(rel.nodes.begin(), rel.nodes.end());
    EXPECT_EQ(uniq.size(), rel.nodes.size());
    // Star edges: every node adjacent to local 0 => connected.
    for (int i = 1; i < rel.adj.num_nodes(); ++i) {
      EXPECT_TRUE(rel.adj.HasEdge(0, i));
      EXPECT_TRUE(rel.adj.HasEdge(i, 0));
    }
    EXPECT_TRUE(rel.adj.Validate().ok());
  }
}

TEST(BiasedSubgraph, RetainsOriginalEdges) {
  const HeteroGraph& g = SmallGraph();
  BiasedSubgraphConfig cfg;
  cfg.k = 16;
  BiasedSubgraph sub =
      BuildBiasedSubgraph(g, CachedPretrain().hidden_reps, 10, cfg);
  const RelationSubgraph& rel = sub.per_relation[0];
  // Any original edge between two selected nodes must appear locally.
  for (size_t i = 0; i < rel.nodes.size(); ++i) {
    for (size_t j = i + 1; j < rel.nodes.size(); ++j) {
      if (g.relations[0].HasEdge(rel.nodes[i], rel.nodes[j])) {
        EXPECT_TRUE(rel.adj.HasEdge(static_cast<int>(i), static_cast<int>(j)));
      }
    }
  }
}

TEST(BiasedSubgraph, BiasRaisesBotHomophily) {
  // The headline mechanism (Fig. 8): biased selection must raise bot
  // homophily well above the original graph's bot homophily.
  const HeteroGraph& g = SmallGraph();
  const Matrix& reps = CachedPretrain().hidden_reps;
  BiasedSubgraphConfig biased;
  biased.k = 16;
  BiasedSubgraphConfig ppr_only = biased;
  ppr_only.ppr_only = true;

  double biased_bot = 0.0, ppr_bot = 0.0;
  int bots = 0;
  for (int v = 0; v < g.num_nodes; ++v) {
    if (g.labels[v] != 1) continue;
    double hb = SubgraphCenterHomophily(BuildBiasedSubgraph(g, reps, v, biased),
                                        g.labels);
    double hp = SubgraphCenterHomophily(
        BuildBiasedSubgraph(g, reps, v, ppr_only), g.labels);
    if (hb < 0 || hp < 0) continue;
    biased_bot += hb;
    ppr_bot += hp;
    ++bots;
    if (bots >= 60) break;
  }
  ASSERT_GT(bots, 10);
  EXPECT_GT(biased_bot / bots, ppr_bot / bots + 0.1);
}

TEST(BiasedSubgraph, LambdaOneIsPureNormalisedPpr) {
  const HeteroGraph& g = SmallGraph();
  const Matrix& reps = CachedPretrain().hidden_reps;
  BiasedSubgraphConfig lambda1;
  lambda1.k = 8;
  lambda1.lambda = 1.0;
  BiasedSubgraphConfig ppr_only = lambda1;
  ppr_only.ppr_only = true;
  BiasedSubgraph a = BuildBiasedSubgraph(g, reps, 3, lambda1);
  BiasedSubgraph b = BuildBiasedSubgraph(g, reps, 3, ppr_only);
  for (size_t r = 0; r < a.per_relation.size(); ++r) {
    EXPECT_EQ(a.per_relation[r].nodes, b.per_relation[r].nodes);
  }
}

TEST(SubgraphBatch, BlockStackingIsConsistent) {
  const HeteroGraph& g = SmallGraph();
  BiasedSubgraphConfig cfg;
  cfg.k = 8;
  std::vector<BiasedSubgraph> subs =
      BuildAllSubgraphs(g, CachedPretrain().hidden_reps, cfg);
  std::vector<int> centers = {0, 17, 42, 99};
  SubgraphBatch batch = MakeSubgraphBatch(subs, centers, g.num_relations());
  ASSERT_EQ(batch.rel_adjs.size(), static_cast<size_t>(g.num_relations()));
  for (int r = 0; r < g.num_relations(); ++r) {
    // Stacked node count matches id list.
    EXPECT_EQ(batch.rel_adjs[r].fwd->num_nodes(),
              static_cast<int>(batch.rel_node_ids[r].size()));
    // Centre rows point at the right global ids.
    ASSERT_EQ(batch.rel_center_rows[r].size(), centers.size());
    for (size_t i = 0; i < centers.size(); ++i) {
      EXPECT_EQ(batch.rel_node_ids[r][batch.rel_center_rows[r][i]],
                centers[i]);
    }
  }
}

TEST(SemanticAttention, OutputShapeAndWeightSimplex) {
  Rng rng(3);
  ParamStore store;
  SemanticAttention att(8, 4, &store, &rng);
  Tensor h1 = MakeTensor(Matrix::RandomNormal(5, 8, 1.0, &rng));
  Tensor h2 = MakeTensor(Matrix::RandomNormal(5, 8, 1.0, &rng));
  Tensor h3 = MakeTensor(Matrix::RandomNormal(5, 8, 1.0, &rng));
  Tensor out = att.Forward({h1, h2, h3});
  EXPECT_EQ(out->rows(), 5);
  EXPECT_EQ(out->cols(), 8);
  const auto& betas = att.last_weights();
  ASSERT_EQ(betas.size(), 3u);
  double total = 0.0;
  for (double b : betas) {
    EXPECT_GT(b, 0.0);
    total += b;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SemanticAttention, GradientsFlowToAttentionParams) {
  Rng rng(4);
  ParamStore store;
  SemanticAttention att(6, 3, &store, &rng);
  Tensor h1 = MakeTensor(Matrix::RandomNormal(4, 6, 0.8, &rng), true);
  Tensor h2 = MakeTensor(Matrix::RandomNormal(4, 6, 0.8, &rng), true);
  std::vector<Tensor> params = store.params();
  params.push_back(h1);
  params.push_back(h2);
  ExpectGradientsMatch(params, [&] {
    Tensor out = att.Forward({h1, h2});
    return ops::MeanAll(ops::Mul(out, out));
  }, 1e-6, 1e-4);
}

TEST(SemanticAttention, MeanPoolAverages) {
  Tensor a = MakeTensor(Matrix(2, 3, 1.0));
  Tensor b = MakeTensor(Matrix(2, 3, 3.0));
  Tensor out = MeanPoolRelations({a, b});
  EXPECT_DOUBLE_EQ(out->value(0, 0), 2.0);
}

TEST(Bsg4Bot, EndToEndBeatsMlpPreclassifier) {
  Bsg4BotConfig cfg;
  cfg.pretrain = FastPretrain();
  cfg.subgraph.k = 12;
  cfg.hidden = 16;
  cfg.max_epochs = 20;
  cfg.patience = 20;
  cfg.seed = 5;
  Bsg4Bot model(SmallGraph(), cfg);
  TrainResult res = model.Fit();
  EXPECT_GT(res.test.accuracy, 0.75);
  EXPECT_GT(res.test.f1, 0.70);
  EXPECT_GT(model.prepare_seconds(), 0.0);
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(Bsg4Bot, PredictMatchesLogitsArgmax) {
  Bsg4BotConfig cfg;
  cfg.pretrain = FastPretrain();
  cfg.subgraph.k = 8;
  cfg.hidden = 12;
  cfg.max_epochs = 4;
  cfg.patience = 4;
  Bsg4Bot model(SmallGraph(), cfg);
  model.Fit();
  std::vector<int> nodes = {1, 2, 3, 4, 5};
  Matrix logits = model.PredictLogits(nodes);
  std::vector<int> preds = model.Predict(nodes);
  ASSERT_EQ(preds.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    int expect = logits(static_cast<int>(i), 1) > logits(static_cast<int>(i), 0)
                     ? 1
                     : 0;
    EXPECT_EQ(preds[i], expect);
  }
}

TEST(Bsg4Bot, AblationSwitchesChangeArchitecture) {
  Bsg4BotConfig full;
  full.pretrain = FastPretrain();
  full.subgraph.k = 8;
  full.hidden = 12;
  full.max_epochs = 2;
  full.patience = 2;
  Bsg4BotConfig no_concat = full;
  no_concat.use_intermediate_concat = false;
  Bsg4BotConfig mean_pool = full;
  mean_pool.use_semantic_attention = false;

  Bsg4Bot a(SmallGraph(), full);
  Bsg4Bot b(SmallGraph(), no_concat);
  Bsg4Bot c(SmallGraph(), mean_pool);
  a.Fit();
  b.Fit();
  c.Fit();
  // Concatenation widens the head: more parameters.
  EXPECT_GT(a.NumParameters(), b.NumParameters());
  // Mean pooling removes the semantic-attention parameters.
  EXPECT_GT(a.NumParameters(), c.NumParameters());
}

TEST(Plugin, RewiredGraphsCoverAllRelationsAndValidate) {
  const HeteroGraph& g = SmallGraph();
  BiasedSubgraphConfig cfg;
  cfg.k = 8;
  std::vector<BiasedSubgraph> subs =
      BuildAllSubgraphs(g, CachedPretrain().hidden_reps, cfg);
  PluginGraphs plugin = BuildPluginGraphs(g, subs);
  EXPECT_EQ(plugin.per_relation.size(),
            static_cast<size_t>(g.num_relations()));
  EXPECT_TRUE(plugin.merged.Validate().ok());
  EXPECT_GT(plugin.merged.num_edges(), 0);
  // Plugin graph raises bot homophily over the original merged graph.
  double orig = ClassHomophily(g.MergedGraph(), g.labels, 1);
  double rewired = ClassHomophily(plugin.merged, g.labels, 1);
  EXPECT_GT(rewired, orig);
}

TEST(Plugin, ModelsTrainOnRewiredGraphs) {
  const HeteroGraph& g = SmallGraph();
  BiasedSubgraphConfig cfg;
  cfg.k = 8;
  std::vector<BiasedSubgraph> subs =
      BuildAllSubgraphs(g, CachedPretrain().hidden_reps, cfg);
  PluginGraphs plugin = BuildPluginGraphs(g, subs);
  ModelConfig mc;
  mc.hidden = 16;
  TrainConfig tc;
  tc.max_epochs = 40;
  tc.patience = 40;
  for (const char* base : {"GCN", "GAT", "BotRGCN"}) {
    auto model = CreatePluginModel(base, g, plugin, mc, 3);
    ASSERT_NE(model, nullptr) << base;
    TrainResult res = TrainModel(model.get(), tc);
    EXPECT_GT(res.test.accuracy, 0.6) << base;
  }
  EXPECT_EQ(CreatePluginModel("MLP", g, plugin, mc, 3), nullptr);
}

}  // namespace
}  // namespace bsg

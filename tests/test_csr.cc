// CSR adjacency structure tests, including the parameterised normalisation
// property sweep.
#include <gtest/gtest.h>

#include "graph/csr.h"

namespace bsg {
namespace {

Csr Path5() {
  return Csr::FromEdgesSymmetric(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
}

TEST(Csr, FromEdgesDeduplicates) {
  Csr g = Csr::FromEdges(3, {{0, 1}, {0, 1}, {0, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 0);  // directed: no reverse edge
}

TEST(Csr, FromEdgesSymmetricAddsReverse) {
  Csr g = Csr::FromEdgesSymmetric(3, {{0, 1}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Csr, FromAdjacencyListsSortsAndDedups) {
  Csr g = Csr::FromAdjacencyLists({{2, 1, 2}, {}, {0}});
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(*g.NeighborsBegin(0), 1);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(Csr, ValidateCatchesNothingOnGoodGraph) {
  EXPECT_TRUE(Path5().Validate().ok());
}

TEST(Csr, TransposeReversesEdges) {
  Csr g = Csr::FromEdges(4, {{0, 1}, {0, 2}, {3, 0}});
  Csr t = g.Transposed();
  EXPECT_TRUE(t.HasEdge(1, 0));
  EXPECT_TRUE(t.HasEdge(2, 0));
  EXPECT_TRUE(t.HasEdge(0, 3));
  EXPECT_EQ(t.num_edges(), g.num_edges());
}

TEST(Csr, TransposeOfSymmetricIsSelf) {
  Csr g = Path5();
  Csr t = g.Transposed();
  ASSERT_EQ(t.num_edges(), g.num_edges());
  for (int u = 0; u < 5; ++u) {
    ASSERT_EQ(t.Degree(u), g.Degree(u));
    for (int i = 0; i < g.Degree(u); ++i) {
      EXPECT_EQ(g.NeighborsBegin(u)[i], t.NeighborsBegin(u)[i]);
    }
  }
}

TEST(Csr, WithSelfLoopsIdempotent) {
  Csr g = Path5().WithSelfLoops();
  int64_t edges = g.num_edges();
  Csr g2 = g.WithSelfLoops();
  EXPECT_EQ(g2.num_edges(), edges);
  for (int u = 0; u < 5; ++u) EXPECT_TRUE(g2.HasEdge(u, u));
}

TEST(Csr, RowNormalizedRowsSumToOne) {
  Csr g = Path5().Normalized(CsrNorm::kRow);
  for (int u = 0; u < 5; ++u) {
    double total = 0.0;
    const double* w = g.WeightsBegin(u);
    for (int e = 0; e < g.Degree(u); ++e) total += w[e];
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Csr, SymNormalizedWeightsMatchFormula) {
  // Path graph with self loops: deg+1 known per node.
  Csr g = Path5().Normalized(CsrNorm::kSym);
  // Node 0 has degree 2 (self + 1 neighbour) after loops, node 1 degree 3.
  // Weight of edge (0,1) = 1/sqrt(2*3).
  const int* nb = g.NeighborsBegin(0);
  const double* w = g.WeightsBegin(0);
  for (int e = 0; e < g.Degree(0); ++e) {
    if (nb[e] == 1) {
      EXPECT_NEAR(w[e], 1.0 / std::sqrt(6.0), 1e-12);
    }
    if (nb[e] == 0) {
      EXPECT_NEAR(w[e], 1.0 / 2.0, 1e-12);
    }
  }
}

TEST(Csr, InducedSubgraphKeepsInternalEdges) {
  Csr g = Path5();
  Csr sub = g.InducedSubgraph({1, 2, 4});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_TRUE(sub.HasEdge(0, 1));   // 1-2 survives as 0-1
  EXPECT_FALSE(sub.HasEdge(1, 2));  // 2-4 never existed
  EXPECT_EQ(sub.Degree(2), 0);      // node 4 isolated in the subset
}

TEST(Csr, TwoHopExcludesSelfAndDirectComputation) {
  Csr g = Path5();
  Csr two = g.TwoHop();
  EXPECT_TRUE(two.HasEdge(0, 2));
  EXPECT_TRUE(two.HasEdge(1, 3));
  EXPECT_FALSE(two.HasEdge(0, 0));
  EXPECT_FALSE(two.HasEdge(0, 3));
}

TEST(Csr, TwoHopRespectsCap) {
  // Star graph: centre has many 2-hop... leaves have many 2-hop neighbours.
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i <= 30; ++i) edges.emplace_back(0, i);
  Csr star = Csr::FromEdgesSymmetric(31, edges);
  Csr two = star.TwoHop(/*cap=*/5);
  for (int u = 1; u <= 30; ++u) EXPECT_LE(two.Degree(u), 5);
}

TEST(Csr, SampleNeighborsBoundsDegree) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i <= 20; ++i) edges.emplace_back(0, i);
  Csr g = Csr::FromEdgesSymmetric(21, edges);
  Rng rng(3);
  Csr s = g.SampleNeighbors(4, &rng);
  EXPECT_EQ(s.Degree(0), 4);
  for (int u = 1; u <= 20; ++u) EXPECT_EQ(s.Degree(u), 1);  // under fanout
  // Samples are real neighbours.
  for (const int* p = s.NeighborsBegin(0); p != s.NeighborsEnd(0); ++p) {
    EXPECT_TRUE(g.HasEdge(0, *p));
  }
}

TEST(Csr, BlockDiagonalShiftsIds) {
  Csr a = Csr::FromEdgesSymmetric(2, {{0, 1}});
  Csr b = Csr::FromEdgesSymmetric(3, {{0, 2}});
  Csr stacked = Csr::BlockDiagonal({&a, &b});
  EXPECT_EQ(stacked.num_nodes(), 5);
  EXPECT_TRUE(stacked.HasEdge(0, 1));
  EXPECT_TRUE(stacked.HasEdge(2, 4));
  EXPECT_FALSE(stacked.HasEdge(1, 2));
  EXPECT_TRUE(stacked.Validate().ok());
}

TEST(Csr, BlockDiagonalCarriesWeights) {
  Csr a = Csr::FromEdgesSymmetric(2, {{0, 1}}).Normalized(CsrNorm::kRow);
  Csr b = Csr::FromEdgesSymmetric(2, {{0, 1}}).Normalized(CsrNorm::kRow);
  Csr stacked = Csr::BlockDiagonal({&a, &b});
  ASSERT_FALSE(stacked.weights().empty());
  EXPECT_NEAR(stacked.weights()[0], 1.0, 1e-12);
}

TEST(Csr, EmptyGraphIsValid) {
  Csr g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.Validate().ok());
}

// Property sweep: normalisation invariants across random graphs.
class CsrNormProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrNormProperty, RowNormSumsToOneOnRandomGraphs) {
  Rng rng(GetParam());
  std::vector<std::pair<int, int>> edges;
  int n = 30;
  for (int e = 0; e < 120; ++e) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  Csr g = Csr::FromEdgesSymmetric(n, edges);
  ASSERT_TRUE(g.Validate().ok());
  Csr row = g.Normalized(CsrNorm::kRow);
  for (int u = 0; u < n; ++u) {
    if (row.Degree(u) == 0) continue;
    double total = 0.0;
    const double* w = row.WeightsBegin(u);
    for (int e = 0; e < row.Degree(u); ++e) total += w[e];
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Sym norm is symmetric in its weights: w(u,v) == w(v,u).
  Csr sym = g.Normalized(CsrNorm::kSym);
  Csr sym_t = sym.Transposed();
  ASSERT_EQ(sym.num_edges(), sym_t.num_edges());
  for (int u = 0; u < n; ++u) {
    const int* nb = sym.NeighborsBegin(u);
    const double* w = sym.WeightsBegin(u);
    const int* nb_t = sym_t.NeighborsBegin(u);
    const double* w_t = sym_t.WeightsBegin(u);
    for (int e = 0; e < sym.Degree(u); ++e) {
      EXPECT_EQ(nb[e], nb_t[e]);
      EXPECT_NEAR(w[e], w_t[e], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CsrNormProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bsg

// Every baseline model: shape correctness, trainability (loss decreases,
// beats chance on a learnable benchmark), and model-specific behaviours.
#include <cmath>

#include <gtest/gtest.h>

#include "models/gprgnn.h"
#include "models/mlp.h"
#include "models/model_factory.h"
#include "test_common.h"
#include "train/trainer.h"

namespace bsg {
namespace {

using bsg::testing::MultiRelationGraph;
using bsg::testing::SmallGraph;

ModelConfig FastConfig() {
  ModelConfig mc;
  mc.hidden = 16;
  mc.cluster_parts = 6;
  mc.clusters_per_batch = 2;
  return mc;
}

TrainConfig FastTrain() {
  TrainConfig tc;
  tc.max_epochs = 50;
  tc.patience = 50;  // no early stop in the smoke tests
  return tc;
}

// ---- parameterised across every baseline ----

class EveryBaseline : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryBaseline, ForwardShapeIsNodesByClasses) {
  const HeteroGraph& g = SmallGraph();
  auto model = CreateModel(GetParam(), g, FastConfig(), 7);
  ASSERT_NE(model, nullptr);
  Tensor logits = model->Forward(/*training=*/false);
  EXPECT_EQ(logits->rows(), g.num_nodes);
  EXPECT_EQ(logits->cols(), 2);
}

TEST_P(EveryBaseline, HasTrainableParameters) {
  auto model = CreateModel(GetParam(), SmallGraph(), FastConfig(), 7);
  ASSERT_NE(model, nullptr);
  EXPECT_GT(model->NumParameters(), 0);
  for (const Tensor& p : model->Parameters()) {
    EXPECT_TRUE(p->requires_grad);
  }
}

TEST_P(EveryBaseline, TrainingReducesLoss) {
  auto model = CreateModel(GetParam(), SmallGraph(), FastConfig(), 7);
  ASSERT_NE(model, nullptr);
  TrainResult res = TrainModel(model.get(), FastTrain());
  ASSERT_GE(res.loss_history.size(), 5u);
  EXPECT_LT(res.loss_history.back(), res.loss_history.front());
}

TEST_P(EveryBaseline, BeatsChanceOnLearnableBenchmark) {
  auto model = CreateModel(GetParam(), SmallGraph(), FastConfig(), 7);
  ASSERT_NE(model, nullptr);
  TrainResult res = TrainModel(model.get(), FastTrain());
  // Majority class is ~55% on twibot20-sim; any real learner clears 0.65.
  EXPECT_GT(res.test.accuracy, 0.65) << GetParam();
  EXPECT_GT(res.test.f1, 0.5) << GetParam();
}

TEST_P(EveryBaseline, WorksOnMultiRelationGraph) {
  auto model = CreateModel(GetParam(), MultiRelationGraph(), FastConfig(), 9);
  ASSERT_NE(model, nullptr);
  Tensor logits = model->Forward(false);
  EXPECT_EQ(logits->rows(), MultiRelationGraph().num_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EveryBaseline,
    ::testing::Values("RoBERTa", "MLP", "GCN", "GAT", "GraphSAGE",
                      "ClusterGCN", "SlimG", "BotRGCN", "RGT", "BotMoe",
                      "H2GCN", "GPR-GNN"));

// ---- model-specific behaviour ----

TEST(ModelFactory, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateModel("NoSuchModel", SmallGraph(), FastConfig(), 1),
            nullptr);
}

TEST(ModelFactory, ListsTwelveBaselines) {
  EXPECT_EQ(BaselineModelNames().size(), 12u);
}

TEST(ClusterGcn, EpochLossesAreBatched) {
  ModelConfig mc = FastConfig();
  auto model = CreateModel("ClusterGCN", SmallGraph(), mc, 3);
  auto losses = model->BuildEpochLosses(SmallGraph().train_idx);
  // 6 parts, 2 per batch => up to 3 batch losses.
  EXPECT_GE(losses.size(), 2u);
  EXPECT_LE(losses.size(), 3u);
  for (const Tensor& l : losses) {
    EXPECT_EQ(l->rows(), 1);
    EXPECT_EQ(l->cols(), 1);
    EXPECT_GT(l->value(0, 0), 0.0);
  }
}

TEST(GprGnn, GammaInitialisedToPprProfile) {
  ModelConfig mc = FastConfig();
  mc.gpr_steps = 3;
  mc.gpr_alpha = 0.1;
  GprGnnModel model(SmallGraph(), mc, 3);
  std::vector<double> gamma = model.GammaValues();
  ASSERT_EQ(gamma.size(), 4u);
  EXPECT_NEAR(gamma[0], 0.1, 1e-12);
  EXPECT_NEAR(gamma[1], 0.09, 1e-12);
  EXPECT_NEAR(gamma[3], std::pow(0.9, 3), 1e-12);
}

TEST(Sage, ResamplingChangesTrainForwardOnly) {
  auto model = CreateModel("GraphSAGE", SmallGraph(), FastConfig(), 3);
  Tensor eval1 = model->Forward(false);
  model->OnEpochStart();
  Tensor eval2 = model->Forward(false);
  // Eval path uses the full neighbourhood: unchanged by resampling.
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(eval1->value(i, 0), eval2->value(i, 0));
  }
}

TEST(Mlp, RobertaVariantIgnoresNonTextFeatures) {
  const HeteroGraph& g = SmallGraph();
  auto model = MakeRobertaBaseline(g, FastConfig(), 5);
  Tensor before = model->Forward(false);
  // Zero a non-text block: logits must not change.
  HeteroGraph altered = g.WithFeatureBlockZeroed("temporal");
  auto model2 = MakeRobertaBaseline(altered, FastConfig(), 5);
  Tensor after = model2->Forward(false);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(before->value(i, 0), after->value(i, 0));
  }
}

TEST(Models, DeterministicForSameSeed) {
  auto m1 = CreateModel("GCN", SmallGraph(), FastConfig(), 42);
  auto m2 = CreateModel("GCN", SmallGraph(), FastConfig(), 42);
  Tensor l1 = m1->Forward(false);
  Tensor l2 = m2->Forward(false);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(l1->value(i, 0), l2->value(i, 0));
    EXPECT_DOUBLE_EQ(l1->value(i, 1), l2->value(i, 1));
  }
}

TEST(Trainer, EarlyStoppingTriggersWithTinyPatience) {
  TrainConfig tc;
  tc.max_epochs = 100;
  tc.patience = 2;
  auto model = CreateModel("MLP", SmallGraph(), FastConfig(), 3);
  TrainResult res = TrainModel(model.get(), tc);
  EXPECT_LT(res.epochs_run, 100);
}

TEST(Trainer, TrainOverrideRestrictsSupervision) {
  const HeteroGraph& g = SmallGraph();
  TrainConfig tc = FastTrain();
  tc.max_epochs = 10;
  tc.train_override = {g.train_idx[0], g.train_idx[1], g.train_idx[2],
                       g.train_idx[3]};
  auto model = CreateModel("MLP", g, FastConfig(), 3);
  TrainResult res = TrainModel(model.get(), tc);
  EXPECT_EQ(res.epochs_run, 10);  // runs, just with 4 labelled nodes
}

TEST(Trainer, ReportsTimingFields) {
  auto model = CreateModel("MLP", SmallGraph(), FastConfig(), 3);
  TrainConfig tc = FastTrain();
  tc.max_epochs = 5;
  TrainResult res = TrainModel(model.get(), tc);
  EXPECT_GT(res.total_seconds, 0.0);
  EXPECT_GT(res.seconds_per_epoch, 0.0);
  EXPECT_NEAR(res.seconds_per_epoch * res.epochs_run, res.total_seconds,
              res.total_seconds * 0.01 + 1e-9);
}

}  // namespace
}  // namespace bsg

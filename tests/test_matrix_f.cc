// MatrixF: the f32 serving kernels against their f64 oracles within
// tolerance, exact behaviours the mixed-precision contract depends on
// (narrow/widen round trips, zero-vector cosines, gather/concat layouts),
// NaN/Inf propagation through the branch-free kernels, and pooled storage
// (PoolSlabF recycles through the same BufferPool free lists as Matrix).
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "graph/csr.h"
#include "tensor/matrix.h"
#include "tensor/matrix_f.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace bsg {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

// Random f64 matrix with float-magnitude entries, plus its f32 narrowing.
Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = scale * rng->Normal();
  }
  return m;
}

// |f32 - f64| <= tol * (1 + |f64|): the relative-error form the serving
// parity contract uses (README "Mixed-precision serving").
void ExpectClose(const Matrix& oracle, const MatrixF& got, double tol) {
  ASSERT_EQ(oracle.rows(), got.rows());
  ASSERT_EQ(oracle.cols(), got.cols());
  for (int r = 0; r < oracle.rows(); ++r) {
    for (int c = 0; c < oracle.cols(); ++c) {
      const double want = oracle(r, c);
      const double diff = std::abs(static_cast<double>(got(r, c)) - want);
      EXPECT_LE(diff, tol * (1.0 + std::abs(want)))
          << "at (" << r << "," << c << "): f64=" << want
          << " f32=" << got(r, c);
    }
  }
}

TEST(MatrixF, NarrowWidenRoundTripIsExactForFloatValues) {
  Rng rng(7);
  Matrix m(5, 9);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      // Force float-representable doubles so narrow -> widen is lossless.
      m(r, c) = static_cast<double>(static_cast<float>(rng.Normal()));
    }
  }
  Matrix back = MatrixF::FromDouble(m).ToDouble();
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) EXPECT_EQ(back(r, c), m(r, c));
  }
}

TEST(MatrixF, MatMulMatchesF64OracleRandomized) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(40));
    const int k = 1 + static_cast<int>(rng.UniformInt(60));
    const int n = 1 + static_cast<int>(rng.UniformInt(40));
    Matrix a = RandomMatrix(m, k, &rng);
    Matrix b = RandomMatrix(k, n, &rng);
    MatrixF got = MatrixF::FromDouble(a).MatMul(MatrixF::FromDouble(b));
    ExpectClose(a.MatMul(b), got, 1e-4 * k);
  }
}

TEST(MatrixF, MatMulAddBiasMatchesF64Oracle) {
  Rng rng(13);
  Matrix a = RandomMatrix(17, 23, &rng);
  Matrix w = RandomMatrix(23, 12, &rng);
  Matrix bias = RandomMatrix(1, 12, &rng);
  MatrixF got = MatrixF::FromDouble(a).MatMulAddBias(MatrixF::FromDouble(w),
                                                     MatrixF::FromDouble(bias));
  ExpectClose(a.MatMulAddBias(w, bias), got, 1e-3);
}

TEST(MatrixF, SpmmMatchesEdgeByEdgeOracleBothWeightSources) {
  Rng rng(17);
  const int n = 40;
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < 160; ++e) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  Csr adj = Csr::FromEdgesSymmetric(n, edges).Normalized(CsrNorm::kSym);
  Matrix x = RandomMatrix(n, 7, &rng);
  // f64 oracle, accumulated edge by edge in CSR order.
  Matrix want(n, 7);
  for (int u = 0; u < n; ++u) {
    const int* nb = adj.NeighborsBegin(u);
    const double* wt = adj.WeightsBegin(u);
    for (int j = 0; j < adj.Degree(u); ++j) {
      for (int c = 0; c < 7; ++c) want(u, c) += wt[j] * x(nb[j], c);
    }
  }
  MatrixF xf = MatrixF::FromDouble(x);
  // Per-edge double->float casts.
  ExpectClose(want, SpmmF(adj, nullptr, xf), 1e-4);
  // Pre-cast weight stream (the BatchStacker path) — same values.
  std::vector<float> w32(adj.weights().begin(), adj.weights().end());
  MatrixF a = SpmmF(adj, nullptr, xf);
  MatrixF b = SpmmF(adj, &w32, xf);
  ASSERT_TRUE(a.SameShape(b));
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) EXPECT_EQ(a(r, c), b(r, c));
  }
}

TEST(MatrixF, UnweightedSpmmSumsNeighbours) {
  Csr adj = Csr::FromEdges(3, {{0, 1}, {0, 2}, {2, 0}});
  MatrixF x(3, 2);
  x(0, 0) = 1.0f;
  x(1, 0) = 2.0f;
  x(2, 0) = 4.0f;
  x(0, 1) = -1.0f;
  MatrixF out = SpmmF(adj, nullptr, x);
  EXPECT_EQ(out(0, 0), 6.0f);   // rows 1 + 2
  EXPECT_EQ(out(1, 0), 0.0f);   // no neighbours
  EXPECT_EQ(out(2, 0), 1.0f);   // row 0
  EXPECT_EQ(out(2, 1), -1.0f);
}

TEST(MatrixF, SegmentSumMatchesManualPartition) {
  Rng rng(19);
  Matrix msgs = RandomMatrix(10, 4, &rng);
  std::vector<int64_t> seg_ptr = {0, 3, 3, 7, 10};  // includes empty segment
  MatrixF got = SegmentSumF(MatrixF::FromDouble(msgs), seg_ptr);
  ASSERT_EQ(got.rows(), 4);
  Matrix want(4, 4);
  for (size_t s = 0; s + 1 < seg_ptr.size(); ++s) {
    for (int64_t i = seg_ptr[s]; i < seg_ptr[s + 1]; ++i) {
      for (int c = 0; c < 4; ++c) {
        want(static_cast<int>(s), c) += msgs(static_cast<int>(i), c);
      }
    }
  }
  ExpectClose(want, got, 1e-5);
}

TEST(MatrixF, ElementwiseKernelsMatchF64Oracle) {
  Rng rng(23);
  Matrix a = RandomMatrix(9, 11, &rng);
  Matrix b = RandomMatrix(9, 11, &rng);

  MatrixF lr = MatrixF::FromDouble(a);
  lr.LeakyReluInPlace(0.01f);
  Matrix lr_want(9, 11);
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 11; ++c) {
      lr_want(r, c) = a(r, c) > 0.0 ? a(r, c) : 0.01 * a(r, c);
    }
  }
  ExpectClose(lr_want, lr, 1e-6);

  MatrixF th = MatrixF::FromDouble(a);
  th.TanhInPlace();
  Matrix th_want(9, 11);
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 11; ++c) th_want(r, c) = std::tanh(a(r, c));
  }
  ExpectClose(th_want, th, 1e-6);

  MatrixF fused = AddLeakyReluF(MatrixF::FromDouble(a), MatrixF::FromDouble(b),
                                0.01f);
  Matrix fused_want(9, 11);
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 11; ++c) {
      const double s = a(r, c) + b(r, c);
      fused_want(r, c) = s > 0.0 ? s : 0.01 * s;
    }
  }
  ExpectClose(fused_want, fused, 1e-6);

  MatrixF ax = MatrixF::FromDouble(a);
  ax.Axpy(0.5f, MatrixF::FromDouble(b));
  ax.Scale(2.0f);
  Matrix ax_want(9, 11);
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 11; ++c) ax_want(r, c) = 2.0 * (a(r, c) + 0.5 * b(r, c));
  }
  ExpectClose(ax_want, ax, 1e-5);

  MatrixF af = MatrixF::FromDouble(a);
  EXPECT_NEAR(af.Sum(), a.Sum(), 1e-4 * (1.0 + std::abs(a.Sum())));
  EXPECT_NEAR(af.Mean(), a.Mean(), 1e-5);
}

TEST(MatrixF, RowGeometryMatchesF64Oracle) {
  Rng rng(29);
  Matrix a = RandomMatrix(6, 16, &rng);
  Matrix b = RandomMatrix(6, 16, &rng);
  MatrixF af = MatrixF::FromDouble(a);
  MatrixF bf = MatrixF::FromDouble(b);
  for (int r = 0; r < 6; ++r) {
    EXPECT_NEAR(af.RowNorm(r), a.RowNorm(r), 1e-4 * (1.0 + a.RowNorm(r)));
    EXPECT_NEAR(af.RowCosine(r, bf, 5 - r), a.RowCosine(r, b, 5 - r), 1e-4);
  }
  // Zero rows report cosine 0, mirroring Matrix::RowCosine.
  MatrixF z(2, 16);
  EXPECT_EQ(z.RowCosine(0, bf, 0), 0.0f);

  std::vector<float> dots = RowSelfDotsF(af);
  ASSERT_EQ(dots.size(), 6u);
  for (int r = 0; r < 6; ++r) {
    EXPECT_NEAR(dots[r], a.RowNorm(r) * a.RowNorm(r),
                1e-3 * (1.0 + a.RowNorm(r) * a.RowNorm(r)));
  }
}

TEST(MatrixF, GatherAndConcatPreserveLayout) {
  Rng rng(31);
  Matrix a = RandomMatrix(8, 3, &rng);
  MatrixF af = MatrixF::FromDouble(a);
  std::vector<int> idx = {5, 0, 5, 7};
  MatrixF g = af.GatherRows(idx);
  ASSERT_EQ(g.rows(), 4);
  for (size_t i = 0; i < idx.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(g(static_cast<int>(i), c), af(idx[i], c));
    }
  }
  MatrixF cat = g.ConcatCols(g);
  ASSERT_EQ(cat.cols(), 6);
  std::vector<const MatrixF*> parts = {&g, &g, &g};
  MatrixF cat3 = ConcatColsF(parts);
  ASSERT_EQ(cat3.cols(), 9);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(cat(r, c), g(r, c));
      EXPECT_EQ(cat(r, c + 3), g(r, c));
      EXPECT_EQ(cat3(r, c + 6), g(r, c));
    }
  }
}

TEST(MatrixF, NaNAndInfPropagateThroughBranchFreeKernels) {
  // The f32 kernels drop the f64 path's zero-skip branches, so non-finite
  // operands must flow through to the output instead of being skipped.
  MatrixF a(2, 2, 1.0f);
  a(0, 0) = kNaN;
  MatrixF b(2, 2, 1.0f);
  MatrixF prod = a.MatMul(b);
  EXPECT_TRUE(std::isnan(prod(0, 0)));
  EXPECT_TRUE(std::isnan(prod(0, 1)));
  EXPECT_FALSE(std::isnan(prod(1, 0)));

  MatrixF c(2, 2, 1.0f);
  c(1, 1) = kInf;
  MatrixF prod2 = c.MatMul(b);
  EXPECT_TRUE(std::isinf(prod2(1, 0)));

  // Inf * 0 inside the accumulation is NaN — it must not be skipped either.
  MatrixF zero(2, 2, 0.0f);
  MatrixF prod3 = c.MatMul(zero);
  EXPECT_TRUE(std::isnan(prod3(1, 0)));

  // LeakyRelu keeps NaN NaN (the comparison routes it through the slope
  // branch, scaling NaN is still NaN) and maps +/-Inf to +/-scaled Inf.
  MatrixF d(1, 3);
  d(0, 0) = kNaN;
  d(0, 1) = kInf;
  d(0, 2) = -kInf;
  d.LeakyReluInPlace(0.01f);
  EXPECT_TRUE(std::isnan(d(0, 0)));
  EXPECT_EQ(d(0, 1), kInf);
  EXPECT_EQ(d(0, 2), -kInf);

  // Axpy and the sparse kernel propagate too.
  MatrixF e(2, 2, 1.0f);
  e.Axpy(1.0f, a);
  EXPECT_TRUE(std::isnan(e(0, 0)));
  Csr adj = Csr::FromEdges(2, {{0, 0}, {1, 0}});
  MatrixF sp = SpmmF(adj, nullptr, a);
  EXPECT_TRUE(std::isnan(sp(0, 0)));
  EXPECT_TRUE(std::isnan(sp(1, 0)));
}

TEST(MatrixF, PooledStorageRecyclesThroughTheGlobalBufferPool) {
  // Warm the bucket, then check that a same-shaped MatrixF is served from
  // the free list (a hit, no heap miss) — PoolSlabF shares Matrix's pool.
  { MatrixF warm(33, 17); }
  BufferPoolStats before = BufferPool::Global().Stats();
  { MatrixF again = MatrixF::Uninit(33, 17); }
  BufferPoolStats after = BufferPool::Global().Stats();
  EXPECT_EQ(after.acquires, before.acquires + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);

  // The float view spans the whole double bucket: capacity in floats is
  // 2x the bucket the request rounded to.
  const size_t cap_doubles = BufferPool::BucketCapacity((33 * 17 + 1) / 2);
  EXPECT_GE(cap_doubles * 2, static_cast<size_t>(33 * 17));

  // Copies are deep; assignment into a same-bucket slab reuses it.
  MatrixF src(4, 4, 2.5f);
  MatrixF dst(4, 4, 0.0f);
  BufferPoolStats b2 = BufferPool::Global().Stats();
  dst = src;
  BufferPoolStats a2 = BufferPool::Global().Stats();
  EXPECT_EQ(a2.acquires, b2.acquires);  // slab reused, no pool round trip
  EXPECT_EQ(dst(3, 3), 2.5f);
  src(3, 3) = -1.0f;
  EXPECT_EQ(dst(3, 3), 2.5f);
}

}  // namespace
}  // namespace bsg

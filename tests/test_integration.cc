// End-to-end integration: generator -> features -> every training path,
// plus the experiment runner that the benchmark harness relies on.
#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "graph/homophily.h"
#include "test_common.h"
#include "train/experiment.h"
#include "train/splits.h"

namespace bsg {
namespace {

using bsg::testing::SmallGraph;

TEST(Integration, ExperimentRunnerAggregatesSeeds) {
  ModelConfig mc;
  mc.hidden = 12;
  TrainConfig tc;
  tc.max_epochs = 10;
  tc.patience = 10;
  ExperimentResult res =
      RunBaseline("MLP", SmallGraph(), mc, tc, {1, 2, 3});
  EXPECT_GT(res.accuracy.mean, 60.0);
  EXPECT_GE(res.accuracy.std, 0.0);
  EXPECT_GT(res.f1.mean, 40.0);
  EXPECT_NEAR(res.avg_epochs, 10.0, 1e-9);
  EXPECT_GT(res.avg_seconds, 0.0);
}

TEST(Integration, Bsg4BotRunnerIncludesPrepareTime) {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 20;
  cfg.pretrain.hidden = 12;
  cfg.subgraph.k = 8;
  cfg.hidden = 12;
  cfg.max_epochs = 4;
  cfg.patience = 4;
  ExperimentResult res = RunBsg4Bot(SmallGraph(), cfg, {1});
  EXPECT_GT(res.accuracy.mean, 60.0);
  EXPECT_GT(res.avg_seconds, 0.0);
}

TEST(Integration, FormatMeanStdMatchesPaperStyle) {
  MeanStd ms{89.154, 0.42};
  EXPECT_EQ(FormatMeanStd(ms), "89.15(0.4)");
}

TEST(Integration, HeadlineOrderingBsg4BotBeatsGcn) {
  // The central claim at small scale: BSG4Bot > GCN on the same split.
  ModelConfig mc;
  mc.hidden = 16;
  TrainConfig tc;
  tc.max_epochs = 30;
  tc.patience = 30;
  ExperimentResult gcn = RunBaseline("GCN", SmallGraph(), mc, tc, {1, 2});

  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 40;
  cfg.pretrain.hidden = 16;
  cfg.subgraph.k = 12;
  cfg.hidden = 16;
  cfg.max_epochs = 25;
  cfg.patience = 25;
  ExperimentResult ours = RunBsg4Bot(SmallGraph(), cfg, {1, 2});
  EXPECT_GT(ours.f1.mean, gcn.f1.mean);
}

TEST(Integration, BiasedSubgraphsRaiseAverageHomophily) {
  // Fig. 8 end-to-end: average centre homophily in biased subgraphs exceeds
  // the original graph's node homophily average.
  const HeteroGraph& g = SmallGraph();
  PretrainConfig pc;
  pc.epochs = 40;
  pc.hidden = 16;
  PretrainResult pre = PretrainClassifier(g, pc);
  BiasedSubgraphConfig sc;
  sc.k = 12;
  std::vector<BiasedSubgraph> subs = BuildAllSubgraphs(g, pre.hidden_reps, sc);

  std::vector<double> orig = NodeHomophily(g.MergedGraph(), g.labels);
  double orig_avg = 0.0, sub_avg = 0.0;
  int n = 0;
  for (int v = 0; v < g.num_nodes; ++v) {
    double hs = SubgraphCenterHomophily(subs[v], g.labels);
    if (orig[v] < 0 || hs < 0) continue;
    orig_avg += orig[v];
    sub_avg += hs;
    ++n;
  }
  ASSERT_GT(n, 100);
  EXPECT_GT(sub_avg / n, orig_avg / n);
}

TEST(Integration, LowSampleDegradesGracefully) {
  // Fig. 7 shape: 20% of labels must still clearly beat chance (F1 of the
  // all-bot predictor on this split is ~0.6 precision-free; random ~0.45).
  const HeteroGraph& g = SmallGraph();
  Rng rng(5);
  TrainConfig tc;
  tc.max_epochs = 50;
  tc.patience = 50;
  tc.train_override =
      SubsampleTrainFraction(g.train_idx, g.labels, 0.2, &rng);
  ModelConfig mc;
  mc.hidden = 16;
  auto model = CreateModel("MLP", g, mc, 7);
  TrainResult res = TrainModel(model.get(), tc);
  EXPECT_GT(res.test.f1, 0.45);
}

}  // namespace
}  // namespace bsg

// Dense matrix substrate tests.
#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace bsg {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 2.5);
  m.Zero();
  EXPECT_DOUBLE_EQ(m.Sum(), 0.0);
}

TEST(Matrix, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.Sum(), 3.0);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(Matrix, MatMulAgainstHandComputed) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, MatMulIdentityIsNoop) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(4, 4, 1.0, &rng);
  Matrix c = a.MatMul(Matrix::Identity(4));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
  }
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(3, 5, 1.0, &rng);
  Matrix att = a.Transposed().Transposed();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
  }
}

TEST(Matrix, AddAxpyScale) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(1, 1), 44);
  a.Axpy(-1.0, b);
  EXPECT_DOUBLE_EQ(a(1, 1), 4);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.5);
}

TEST(Matrix, ReductionsAndNorms) {
  Matrix a = Matrix::FromRows({{3, -4}});
  EXPECT_DOUBLE_EQ(a.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(a.Mean(), -0.5);
  EXPECT_DOUBLE_EQ(a.AbsMax(), 4.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.RowNorm(0), 5.0);
}

TEST(Matrix, RowCosine) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 2}, {3, 0}});
  EXPECT_DOUBLE_EQ(a.RowCosine(0, a, 2), 1.0);   // parallel
  EXPECT_DOUBLE_EQ(a.RowCosine(0, a, 1), 0.0);   // orthogonal
  Matrix z = Matrix(1, 2, 0.0);
  EXPECT_DOUBLE_EQ(z.RowCosine(0, a, 0), 0.0);   // zero vector convention
}

TEST(Matrix, GatherRows) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Matrix g = a.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_DOUBLE_EQ(g(0, 0), 3);
  EXPECT_DOUBLE_EQ(g(1, 0), 1);
  EXPECT_DOUBLE_EQ(g(2, 1), 3);
}

TEST(Matrix, ColMeansAndStddevs) {
  Matrix a = Matrix::FromRows({{1, 10}, {3, 10}});
  auto means = a.ColMeans();
  auto sds = a.ColStddevs();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
  EXPECT_DOUBLE_EQ(sds[0], 1.0);
  EXPECT_DOUBLE_EQ(sds[1], 0.0);
}

TEST(Matrix, ConcatCols) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_DOUBLE_EQ(c(0, 0), 1);
  EXPECT_DOUBLE_EQ(c(0, 2), 4);
  EXPECT_DOUBLE_EQ(c(1, 1), 5);
}

TEST(Matrix, XavierBounds) {
  Rng rng(7);
  Matrix w = Matrix::Xavier(30, 50, &rng);
  double bound = std::sqrt(6.0 / 80.0);
  EXPECT_LE(w.AbsMax(), bound);
  EXPECT_GT(w.AbsMax(), 0.0);
  // Roughly centred.
  EXPECT_NEAR(w.Mean(), 0.0, 0.02);
}

TEST(Matrix, DebugStringContainsShape) {
  Matrix m(2, 3, 0.0);
  EXPECT_NE(m.DebugString().find("2x3"), std::string::npos);
}

}  // namespace
}  // namespace bsg

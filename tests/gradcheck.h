// Numerical gradient checking for the autograd engine.
//
// For a scalar-valued builder L(params), compares the analytic gradient
// from Backward() against central finite differences on every entry of
// every parameter. Double precision makes tolerances of ~1e-6 achievable.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace bsg::testing {

/// Rebuilds the scalar loss from current parameter values.
using LossBuilder = std::function<Tensor()>;

/// Checks d(loss)/d(param) for every parameter entry against central
/// differences. `eps` is the probe step, `tol` the max allowed
/// |analytic - numeric| / max(1, |numeric|).
inline void ExpectGradientsMatch(const std::vector<Tensor>& params,
                                 const LossBuilder& build_loss,
                                 double eps = 1e-5, double tol = 1e-5) {
  // Analytic gradients.
  Tensor loss = build_loss();
  ASSERT_EQ(loss->rows(), 1);
  ASSERT_EQ(loss->cols(), 1);
  Backward(loss);
  std::vector<Matrix> analytic;
  for (const Tensor& p : params) analytic.push_back(p->grad);

  // Numeric gradients.
  for (size_t k = 0; k < params.size(); ++k) {
    Tensor p = params[k];
    for (size_t i = 0; i < p->value.size(); ++i) {
      double orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      double up = build_loss()->value(0, 0);
      p->value.data()[i] = orig - eps;
      double down = build_loss()->value(0, 0);
      p->value.data()[i] = orig;
      double numeric = (up - down) / (2.0 * eps);
      double got = analytic[k].data()[i];
      double denom = std::max(1.0, std::fabs(numeric));
      EXPECT_NEAR(got / denom, numeric / denom, tol)
          << "param " << k << " entry " << i;
    }
  }
}

}  // namespace bsg::testing

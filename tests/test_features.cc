// K-means, z-score and the feature pipeline.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datagen/config.h"
#include "features/feature_pipeline.h"
#include "features/kmeans.h"
#include "features/zscore.h"

namespace bsg {
namespace {

TEST(KMeans, RecoversWellSeparatedClusters) {
  Rng rng(1);
  // Three tight blobs far apart.
  Matrix points(90, 2);
  for (int i = 0; i < 90; ++i) {
    int c = i / 30;
    points(i, 0) = c * 20.0 + rng.Normal(0, 0.3);
    points(i, 1) = -c * 15.0 + rng.Normal(0, 0.3);
  }
  KMeansConfig cfg;
  cfg.k = 3;
  KMeansResult res = RunKMeans(points, cfg, &rng);
  // All points of a blob share one cluster id.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<int> ids;
    for (int i = blob * 30; i < (blob + 1) * 30; ++i) {
      ids.insert(res.assignment[i]);
    }
    EXPECT_EQ(ids.size(), 1u) << "blob " << blob;
  }
  // Distinct blobs get distinct ids.
  std::set<int> all(res.assignment.begin(), res.assignment.end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(KMeans, InertiaNonIncreasingAcrossRuns) {
  Rng rng(2);
  Matrix points = Matrix::RandomNormal(200, 4, 1.0, &rng);
  KMeansConfig one_iter;
  one_iter.k = 5;
  one_iter.max_iters = 1;
  KMeansConfig many;
  many.k = 5;
  many.max_iters = 25;
  Rng r1(7), r2(7);
  double inertia1 = RunKMeans(points, one_iter, &r1).inertia;
  double inertia2 = RunKMeans(points, many, &r2).inertia;
  EXPECT_LE(inertia2, inertia1 + 1e-9);
}

TEST(KMeans, AssignToCentersMatchesTraining) {
  Rng rng(3);
  Matrix points = Matrix::RandomNormal(100, 3, 1.0, &rng);
  KMeansConfig cfg;
  cfg.k = 4;
  KMeansResult res = RunKMeans(points, cfg, &rng);
  std::vector<int> re = AssignToCenters(points, res.centers);
  EXPECT_EQ(re, res.assignment);
}

TEST(KMeans, EveryClusterIdInRange) {
  Rng rng(4);
  Matrix points = Matrix::RandomNormal(50, 2, 1.0, &rng);
  KMeansConfig cfg;
  cfg.k = 7;
  KMeansResult res = RunKMeans(points, cfg, &rng);
  for (int a : res.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 7);
  }
}

TEST(ZScore, TransformedColumnsAreStandard) {
  Rng rng(5);
  Matrix data(500, 3);
  for (int i = 0; i < 500; ++i) {
    data(i, 0) = rng.Normal(10.0, 2.0);
    data(i, 1) = rng.Normal(-3.0, 0.5);
    data(i, 2) = 42.0;  // constant column
  }
  ZScoreScaler scaler;
  Matrix z = scaler.FitTransform(data);
  auto means = z.ColMeans();
  auto sds = z.ColStddevs();
  EXPECT_NEAR(means[0], 0.0, 1e-9);
  EXPECT_NEAR(sds[0], 1.0, 1e-9);
  EXPECT_NEAR(means[1], 0.0, 1e-9);
  // Constant column: centred, not exploded.
  EXPECT_NEAR(z(0, 2), 0.0, 1e-9);
}

TEST(ZScore, TransformUsesFittedStats) {
  Matrix fit_data = Matrix::FromRows({{0.0}, {10.0}});
  ZScoreScaler scaler;
  scaler.Fit(fit_data);
  Matrix other = Matrix::FromRows({{5.0}});
  Matrix z = scaler.Transform(other);
  EXPECT_NEAR(z(0, 0), 0.0, 1e-12);  // 5 is the fitted mean
}

TEST(FeaturePipeline, BuildsValidatedGraphWithAllBlocks) {
  DatasetConfig cfg = MgtabSim();
  cfg.num_users = 400;
  cfg.tweets_per_user = 10;
  FeatureReport report;
  HeteroGraph g = BuildBenchmarkGraph(cfg, &report);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.num_nodes, 400);
  EXPECT_EQ(g.num_relations(), 7);
  for (const char* block :
       {"desc", "tweet", "num", "cat", "category", "temporal"}) {
    EXPECT_TRUE(g.feature_blocks.count(block)) << block;
  }
  // Blocks tile the feature matrix exactly.
  int total = 0;
  for (const auto& [name, blk] : g.feature_blocks) {
    (void)name;
    total += blk.len;
  }
  EXPECT_EQ(total, g.feature_dim());
  // Expected width: desc(12) + tweet(12) + num(5) + cat(3) +
  // category(1+20) + temporal(12).
  EXPECT_EQ(g.feature_dim(), 12 + 12 + 5 + 3 + 21 + 12);
  EXPECT_EQ(report.num_categories_per_user.size(), 400u);
}

TEST(FeaturePipeline, SplitsArePartition) {
  DatasetConfig cfg = Twibot20Sim();
  cfg.num_users = 300;
  cfg.tweets_per_user = 8;
  HeteroGraph g = BuildBenchmarkGraph(cfg);
  std::vector<int> all;
  all.insert(all.end(), g.train_idx.begin(), g.train_idx.end());
  all.insert(all.end(), g.val_idx.begin(), g.val_idx.end());
  all.insert(all.end(), g.test_idx.begin(), g.test_idx.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), 300u);
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());  // unique
}

TEST(FeaturePipeline, SplitsAreStratified) {
  DatasetConfig cfg = Twibot22Sim();
  cfg.num_users = 1000;
  cfg.tweets_per_user = 6;
  HeteroGraph g = BuildBenchmarkGraph(cfg);
  auto bot_frac = [&](const std::vector<int>& idx) {
    int bots = 0;
    for (int v : idx) bots += g.labels[v];
    return static_cast<double>(bots) / idx.size();
  };
  double train_frac = bot_frac(g.train_idx);
  double test_frac = bot_frac(g.test_idx);
  EXPECT_NEAR(train_frac, test_frac, 0.05);
}

TEST(FeaturePipeline, CategoryFeatureSeparatesBotsFromHumans) {
  // The paper's Fig. 2 regularity must survive the pipeline: bots hit
  // fewer distinct categories than humans on average.
  DatasetConfig cfg = Twibot20Sim();
  cfg.num_users = 600;
  cfg.tweets_per_user = 30;
  FeatureReport report;
  HeteroGraph g = BuildBenchmarkGraph(cfg, &report);
  double bot_mean = 0.0, human_mean = 0.0;
  int bots = 0, humans = 0;
  for (int u = 0; u < g.num_nodes; ++u) {
    if (g.labels[u] == 1) {
      bot_mean += report.num_categories_per_user[u];
      ++bots;
    } else {
      human_mean += report.num_categories_per_user[u];
      ++humans;
    }
  }
  ASSERT_GT(bots, 0);
  ASSERT_GT(humans, 0);
  EXPECT_LT(bot_mean / bots + 1.5, human_mean / humans);
}

TEST(FeaturePipeline, TemporalPercentagesSumToOne) {
  DatasetConfig cfg = MgtabSim();
  cfg.num_users = 200;
  cfg.tweets_per_user = 6;
  HeteroGraph g = BuildBenchmarkGraph(cfg);
  FeatureBlock blk = g.feature_blocks.at("temporal");
  for (int u = 0; u < g.num_nodes; ++u) {
    double total = 0.0;
    for (int c = 0; c < blk.len; ++c) total += g.features(u, blk.start + c);
    EXPECT_NEAR(total, 1.0, 1e-9) << "user " << u;
  }
}

TEST(FeaturePipeline, DeterministicAcrossRuns) {
  DatasetConfig cfg = Twibot20Sim();
  cfg.num_users = 150;
  cfg.tweets_per_user = 6;
  HeteroGraph a = BuildBenchmarkGraph(cfg);
  HeteroGraph b = BuildBenchmarkGraph(cfg);
  ASSERT_EQ(a.features.size(), b.features.size());
  for (size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.features.data()[i], b.features.data()[i]);
  }
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.train_idx, b.train_idx);
}

}  // namespace
}  // namespace bsg

// SubgraphCache: LRU eviction order, capacity bound, counter accuracy,
// graph-version keying, concurrent GetOrBuild and single-flight miss
// de-duplication (run under TSan in CI).
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/subgraph_cache.h"
#include "util/fault.h"
#include "util/resource_governor.h"

namespace bsg {
namespace {

// A minimal one-relation subgraph rooted at `center` (the cache treats the
// payload as opaque; tests only need identity and a nonzero size).
BiasedSubgraph FakeSubgraph(int center) {
  BiasedSubgraph sub;
  sub.center = center;
  RelationSubgraph rel;
  rel.nodes = {center};
  rel.adj = Csr::FromEdges(1, {{0, 0}});
  sub.per_relation.push_back(std::move(rel));
  return sub;
}

std::shared_ptr<const BiasedSubgraph> Shared(int center) {
  return std::make_shared<const BiasedSubgraph>(FakeSubgraph(center));
}

TEST(SubgraphCache, LookupMissThenInsertThenHit) {
  SubgraphCache cache(4);
  EXPECT_EQ(cache.Lookup(7, 0), nullptr);
  auto sub = Shared(7);
  cache.Insert(7, 0, sub);
  auto hit = cache.Lookup(7, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), sub.get());

  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST(SubgraphCache, EvictsLeastRecentlyUsedInOrder) {
  SubgraphCache cache(3);
  for (int t : {1, 2, 3}) cache.Insert(t, 0, Shared(t));
  // Touch 1 so the LRU order (oldest first) becomes 2, 3, 1.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);

  cache.Insert(4, 0, Shared(4));  // evicts 2
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0), nullptr);
  cache.Insert(5, 0, Shared(5));  // LRU is now 1 (3 was just touched)
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(4, 0), nullptr);
  EXPECT_NE(cache.Lookup(5, 0), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 2u);
}

TEST(SubgraphCache, CapacityBoundHoldsAndBytesTrackEntries) {
  SubgraphCache cache(8);
  for (int t = 0; t < 100; ++t) cache.Insert(t, 0, Shared(t));
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 8u);
  EXPECT_EQ(s.inserts, 100u);
  EXPECT_EQ(s.evictions, 92u);
  // All entries are identical in shape, so resident bytes = 8 x one.
  EXPECT_EQ(s.resident_bytes, 8 * SubgraphCache::EntryBytes(FakeSubgraph(0)));

  cache.Clear();
  s = cache.Stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.inserts, 100u);  // cumulative counters survive Clear
}

TEST(SubgraphCache, GraphVersionPartitionsEntries) {
  SubgraphCache cache(8);
  cache.Insert(5, /*version=*/1, Shared(5));
  EXPECT_EQ(cache.Lookup(5, 2), nullptr);  // new graph version: stale miss
  EXPECT_NE(cache.Lookup(5, 1), nullptr);
}

TEST(SubgraphCache, EvictWhereVersionBelowSweepsOnlyStaleVersions) {
  SubgraphCache cache(16);
  for (int t = 0; t < 4; ++t) cache.Insert(t, /*version=*/0, Shared(t));
  for (int t = 0; t < 3; ++t) cache.Insert(t, /*version=*/1, Shared(t));
  ASSERT_EQ(cache.Stats().entries, 7u);

  EXPECT_EQ(cache.EvictWhereVersionBelow(1), 4u);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.version_evictions, 4u);
  EXPECT_EQ(s.evictions, 0u);  // LRU-bound evictions stay separate
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.resident_bytes, 3 * SubgraphCache::EntryBytes(FakeSubgraph(0)));
  // The survivors are exactly the version-1 entries.
  for (int t = 0; t < 4; ++t) EXPECT_EQ(cache.Lookup(t, 0), nullptr);
  for (int t = 0; t < 3; ++t) EXPECT_NE(cache.Lookup(t, 1), nullptr);

  // Idempotent: a second sweep at the same threshold finds nothing.
  EXPECT_EQ(cache.EvictWhereVersionBelow(1), 0u);
  EXPECT_EQ(cache.Stats().version_evictions, 4u);
}

TEST(SubgraphCache, VersionSweepCounterBalanceAfterMixedTraffic) {
  SubgraphCache cache(8);
  // Overflow the bound at version 0 (LRU evictions), then add version 1
  // and sweep: inserts must equal resident + LRU-evicted + version-swept.
  for (int t = 0; t < 20; ++t) cache.Insert(t, 0, Shared(t));
  for (int t = 0; t < 5; ++t) cache.Insert(t, 1, Shared(t));
  cache.EvictWhereVersionBelow(1);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 5u);
  EXPECT_EQ(s.inserts, s.entries + s.evictions + s.version_evictions);
  EXPECT_EQ(s.resident_bytes, 5 * SubgraphCache::EntryBytes(FakeSubgraph(0)));
  // Zero stale-version residents: every surviving entry is at version 1.
  for (int t = 0; t < 20; ++t) EXPECT_EQ(cache.Lookup(t, 0), nullptr);
}

TEST(SubgraphCache, InsertRaceKeepsFirstEntry) {
  SubgraphCache cache(4);
  auto first = Shared(9);
  auto second = Shared(9);
  EXPECT_EQ(cache.Insert(9, 0, first).get(), first.get());
  // Losing builder: the incumbent wins and is what callers get back.
  EXPECT_EQ(cache.Insert(9, 0, second).get(), first.get());
  EXPECT_EQ(cache.Stats().inserts, 1u);
  EXPECT_EQ(cache.Lookup(9, 0).get(), first.get());
}

TEST(SubgraphCache, GetOrBuildBuildsOncePerKeyWhenWarm) {
  SubgraphCache cache(16);
  std::atomic<int> builds{0};
  auto builder = [&](int t) {
    builds.fetch_add(1);
    return FakeSubgraph(t);
  };
  for (int pass = 0; pass < 3; ++pass) {
    for (int t = 0; t < 8; ++t) {
      auto sub = cache.GetOrBuild(t, 0, builder);
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->center, t);
    }
  }
  EXPECT_EQ(builds.load(), 8);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, 24u);
  EXPECT_EQ(s.hits, 16u);
  EXPECT_GE(s.HitRate(), 0.6);
}

TEST(SubgraphCache, SingleFlightCoalescesConcurrentMissesOfOneKey) {
  // N threads miss the same cold key at once: exactly one build must run,
  // the rest park on the flight and share the builder's entry. The builder
  // waits (bounded) until every other thread has registered as coalesced,
  // so the assertion is exact rather than racy.
  SubgraphCache cache(8);
  constexpr int kThreads = 6;
  std::atomic<int> builds{0};
  auto builder = [&](int t) {
    builds.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (cache.Stats().coalesced_misses <
               static_cast<uint64_t>(kThreads - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return FakeSubgraph(t);
  };
  std::vector<std::shared_ptr<const BiasedSubgraph>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back(
        [&, w] { results[w] = cache.GetOrBuild(42, 0, builder); });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int w = 0; w < kThreads; ++w) {
    ASSERT_NE(results[w], nullptr);
    EXPECT_EQ(results[w].get(), results[0].get());  // one shared instance
  }
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(s.misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(s.coalesced_misses, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(s.inserts, 1u);
}

TEST(SubgraphCache, SingleFlightDoesNotSerializeDistinctKeys) {
  // Key 1's builder blocks until key 2's build has completed: if builds of
  // distinct keys were serialized, this would deadlock (bounded by the
  // timeout, which then fails the test).
  SubgraphCache cache(8);
  std::atomic<bool> other_done{false};
  std::thread blocked([&] {
    cache.GetOrBuild(1, 0, [&](int t) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!other_done.load() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return FakeSubgraph(t);
    });
  });
  std::thread other([&] {
    cache.GetOrBuild(2, 0, FakeSubgraph);
    other_done.store(true);
  });
  blocked.join();
  other.join();
  EXPECT_TRUE(other_done.load());
  EXPECT_EQ(cache.Stats().coalesced_misses, 0u);
  EXPECT_EQ(cache.Stats().inserts, 2u);
}

TEST(SubgraphCache, ThrowingBuilderRetiresTicketAndWakesWaiters) {
  // A builder that throws must not leave its single-flight ticket behind:
  // the key would otherwise park every future misser forever.
  SubgraphCache cache(8);
  struct BuildFailed {};
  EXPECT_THROW(
      cache.GetOrBuild(
          3, 0, [](int) -> BiasedSubgraph { throw BuildFailed{}; }),
      BuildFailed);
  // The key recovers: the next misser becomes a fresh builder.
  auto sub = cache.GetOrBuild(3, 0, FakeSubgraph);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->center, 3);

  // Concurrent flavour: waiters parked on a doomed flight wake and retry.
  std::atomic<int> attempts{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> succeeded{0};
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        try {
          auto got = cache.GetOrBuild(7, 0, [&](int t) -> BiasedSubgraph {
            // First two builders fail; later ones (retried waiters
            // included) succeed.
            if (attempts.fetch_add(1) < 2) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              throw BuildFailed{};
            }
            return FakeSubgraph(t);
          });
          if (got != nullptr && got->center == 7) succeeded.fetch_add(1);
          return;
        } catch (const BuildFailed&) {
          // The throwing builder's own caller retries too.
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(succeeded.load(), kThreads);
}

TEST(SubgraphCache, PersistentBuildFailureIsBoundedAndPropagatesStatus) {
  // When a key's builder fails persistently, callers must not livelock
  // chasing it: after kMaxBuildAttempts failed flights (joined or run),
  // GetOrBuild surfaces the flight's terminal Status to that caller.
  SubgraphCache cache(8);
  std::atomic<int> builds{0};
  const auto doomed = [&](int) -> BiasedSubgraph {
    builds.fetch_add(1);
    throw StatusError(Status::Unavailable("backing store down"));
  };

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> unavailable{0};
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      try {
        cache.GetOrBuild(11, 0, doomed);
      } catch (const StatusError& e) {
        // Both the builder's own caller and capped-out waiters land here
        // with the builder's original Status, not a generic wrapper.
        if (e.status().code() == StatusCode::kUnavailable) {
          unavailable.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unavailable.load(), kThreads);

  // Counter balance with failures in the mix: every miss either coalesced
  // onto a flight, failed its own flight, or inserted.
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.flight_failures, static_cast<uint64_t>(builds.load()));
  EXPECT_EQ(s.misses, s.coalesced_misses + s.flight_failures + s.inserts);
  EXPECT_EQ(s.inserts, 0u);

  // The key is not poisoned: a healthy builder fills it afterwards.
  auto sub = cache.GetOrBuild(11, 0, FakeSubgraph);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->center, 11);
}

TEST(SubgraphCache, SingleFlightStressOverSmallKeySet) {
  // Many threads hammer a handful of keys with a non-trivial builder: every
  // result must be correct, and builds must never exceed inserts + lost
  // Insert races (misses - coalesced = builds actually run).
  SubgraphCache cache(16);
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  constexpr int kKeys = 4;
  std::atomic<int> builds{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOps; ++i) {
        const int t = (i + w) % kKeys;
        // Version churn forces periodic rebuild storms.
        const uint64_t version = static_cast<uint64_t>(i / 100);
        auto sub = cache.GetOrBuild(t, version, [&](int target) {
          builds.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return FakeSubgraph(target);
        });
        if (sub == nullptr || sub->center != t) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  // Exact balance: every non-coalesced miss ran the builder exactly once.
  EXPECT_EQ(static_cast<uint64_t>(builds.load()),
            s.misses - s.coalesced_misses);
}

TEST(SubgraphCache, ConcurrentGetOrBuildIsSafeAndConsistent) {
  // Hammer one small cache from several threads over a key range larger
  // than capacity, so lookups, builds, inserts and evictions all interleave.
  // TSan (CI) checks the synchronisation; the asserts check the results.
  SubgraphCache cache(16);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr int kKeyRange = 64;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int t = (i * 13 + w * 7) % kKeyRange;
        auto sub = cache.GetOrBuild(t, 0, FakeSubgraph);
        if (sub == nullptr || sub->center != t) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);

  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_LE(s.entries, 16u);
  // Entries/bytes must balance: inserts - evictions = resident entries.
  EXPECT_EQ(s.inserts - s.evictions, s.entries);
  EXPECT_EQ(s.resident_bytes,
            s.entries * SubgraphCache::EntryBytes(FakeSubgraph(0)));
}

// ---- Byte budgets, cost-aware admission, governor accounting (PR 10) ----

// Resident bytes of the shared "serve.cache" governor account. Caches are
// stack-scoped in this binary and release everything at destruction, so
// within one test the account mirrors the live cache exactly.
uint64_t CacheAccountResident() {
  for (const GovernorAccountStats& a :
       ResourceGovernor::Global().Stats().accounts) {
    if (a.name == "serve.cache") return a.resident_bytes;
  }
  return 0;
}

TEST(SubgraphCache, EntryBytesCountsPayloadAndBookkeepingOverhead) {
  const BiasedSubgraph sub = FakeSubgraph(0);
  size_t payload = sizeof(BiasedSubgraph);
  for (const RelationSubgraph& rel : sub.per_relation) {
    payload += sizeof(RelationSubgraph) + rel.nodes.size() * sizeof(int) +
               rel.adj.indptr().size() * sizeof(int64_t) +
               rel.adj.indices().size() * sizeof(int) +
               rel.adj.weights().size() * sizeof(double);
  }
  // The entry cost is the payload plus the cache's per-entry bookkeeping
  // (LRU node, index node, control block) — strictly more than the arrays.
  EXPECT_GT(SubgraphCache::EntryBytes(sub), payload);
}

TEST(SubgraphCache, ResidentBytesStayExactAcrossEveryEvictionPath) {
  const uint64_t per = SubgraphCache::EntryBytes(FakeSubgraph(0));
  const uint64_t account_base = CacheAccountResident();
  SubgraphCache cache(8);
  const auto check = [&] {
    SubgraphCacheStats s = cache.Stats();
    ASSERT_EQ(s.resident_bytes, s.entries * per);
    ASSERT_EQ(CacheAccountResident() - account_base, s.resident_bytes);
  };
  // LRU eviction path: every insert beyond capacity pops the tail.
  for (int t = 0; t < 50; ++t) {
    cache.Insert(t, 0, Shared(t));
    check();
  }
  // Version-sweep path.
  for (int t = 0; t < 4; ++t) cache.Insert(t, 1, Shared(t));
  cache.EvictWhereVersionBelow(1);
  check();
  // Shrink path (partial, then to empty).
  cache.ShrinkToBytes(2 * per);
  check();
  EXPECT_LE(cache.Stats().resident_bytes, 2 * per);
  EXPECT_EQ(cache.ShrinkToBytes(0), 2 * per);
  check();
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(SubgraphCache, DestructionReleasesTheGovernorAccount) {
  const uint64_t account_base = CacheAccountResident();
  {
    SubgraphCache cache(16);
    for (int t = 0; t < 10; ++t) cache.Insert(t, 0, Shared(t));
    EXPECT_GT(CacheAccountResident(), account_base);
  }
  EXPECT_EQ(CacheAccountResident(), account_base);
}

TEST(SubgraphCache, ByteBudgetEvictsBeyondBytesKeepingNewest) {
  const size_t per = SubgraphCache::EntryBytes(FakeSubgraph(0));
  SubgraphCache cache(1024, /*byte_budget=*/3 * per);
  for (int t = 0; t < 20; ++t) cache.Insert(t, 0, Shared(t));
  SubgraphCacheStats s = cache.Stats();
  EXPECT_LE(s.resident_bytes, 3 * per);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_NE(cache.Lookup(19, 0), nullptr);  // the newest insert survives
  EXPECT_EQ(s.inserts, 20u);
  EXPECT_EQ(s.evictions, 17u);
}

TEST(SubgraphCache, OversizedEntryRefusedAtAdmissionButStillReturned) {
  SubgraphCache cache(8, /*byte_budget=*/1);  // smaller than any entry
  auto sub = Shared(1);
  // Callers always get a usable subgraph even when admission refuses.
  EXPECT_EQ(cache.Insert(1, 0, sub).get(), sub.get());
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.admit_rejects_pressure, 1u);
}

TEST(SubgraphCache, CostAwareAdmissionRejectsCheapBuildsUnderPressure) {
  const size_t per = SubgraphCache::EntryBytes(FakeSubgraph(0));
  SubgraphCache cache(1024, /*byte_budget=*/2 * per,
                      /*admit_cost_us_per_kib=*/50.0);
  // With free space even a zero-cost build is admitted: the w_small rule
  // only prices admissions that would force an eviction.
  cache.InsertWithCost(1, 0, Shared(1), 0.0);
  cache.InsertWithCost(2, 0, Shared(2), 0.0);
  ASSERT_EQ(cache.Stats().entries, 2u);

  // Full: a cheap build must not displace resident entries...
  auto cheap = Shared(3);
  EXPECT_EQ(cache.InsertWithCost(3, 0, cheap, 0.0).get(), cheap.get());
  EXPECT_EQ(cache.Lookup(3, 0), nullptr);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.admit_rejects_cost, 1u);
  EXPECT_EQ(s.evictions, 0u);

  // ...but a build worth >= 50 us per KiB of its size does.
  const double expensive_us =
      50.0 * static_cast<double>(per) / 1024.0 + 1.0;
  cache.InsertWithCost(4, 0, Shared(4), expensive_us);
  EXPECT_NE(cache.Lookup(4, 0), nullptr);
  s = cache.Stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.inserts, 3u);
}

TEST(SubgraphCache, MissBalanceHoldsWithAdmissionRejects) {
  // Every GetOrBuild miss lands in exactly one bucket, with the admission
  // rejects extending the PR 8 balance.
  SubgraphCache cache(8, /*byte_budget=*/1);  // nothing is ever admitted
  for (int t = 0; t < 5; ++t) {
    auto sub = cache.GetOrBuild(t, 0, FakeSubgraph);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->center, t);
  }
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.inserts, 0u);
  EXPECT_EQ(s.admit_rejects_pressure, 5u);
  EXPECT_EQ(s.misses, s.coalesced_misses + s.flight_failures + s.inserts +
                          s.admit_rejects_cost + s.admit_rejects_pressure);
}

TEST(SubgraphCache, HitsAccumulateSavedBuildCost) {
  SubgraphCache cache(8);
  for (int pass = 0; pass < 3; ++pass) {
    auto sub = cache.GetOrBuild(5, 0, FakeSubgraph);
    ASSERT_NE(sub, nullptr);
  }
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 2u);
  // Each hit credits the measured build cost of the entry it served.
  EXPECT_GT(s.hit_cost_saved_us, 0.0);
}

TEST(SubgraphCache, GovernorChargeFaultRefusesAdmission) {
  struct FaultGuard {
    ~FaultGuard() { FaultInjector::Global().Disarm(); }
  } guard;
  ASSERT_TRUE(
      FaultInjector::Global().Configure("governor.charge:first=1").ok());
  SubgraphCache cache(8);
  auto first = Shared(1);
  // The injected refusal simulates the hard watermark: served, not cached.
  EXPECT_EQ(cache.Insert(1, 0, first).get(), first.get());
  EXPECT_EQ(cache.Stats().admit_rejects_pressure, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  // The site fires once; the next admission proceeds normally.
  cache.Insert(2, 0, Shared(2));
  EXPECT_EQ(cache.Stats().entries, 1u);
}

}  // namespace
}  // namespace bsg

// SubgraphCache: LRU eviction order, capacity bound, counter accuracy,
// graph-version keying, concurrent GetOrBuild and single-flight miss
// de-duplication (run under TSan in CI).
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/subgraph_cache.h"

namespace bsg {
namespace {

// A minimal one-relation subgraph rooted at `center` (the cache treats the
// payload as opaque; tests only need identity and a nonzero size).
BiasedSubgraph FakeSubgraph(int center) {
  BiasedSubgraph sub;
  sub.center = center;
  RelationSubgraph rel;
  rel.nodes = {center};
  rel.adj = Csr::FromEdges(1, {{0, 0}});
  sub.per_relation.push_back(std::move(rel));
  return sub;
}

std::shared_ptr<const BiasedSubgraph> Shared(int center) {
  return std::make_shared<const BiasedSubgraph>(FakeSubgraph(center));
}

TEST(SubgraphCache, LookupMissThenInsertThenHit) {
  SubgraphCache cache(4);
  EXPECT_EQ(cache.Lookup(7, 0), nullptr);
  auto sub = Shared(7);
  cache.Insert(7, 0, sub);
  auto hit = cache.Lookup(7, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), sub.get());

  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST(SubgraphCache, EvictsLeastRecentlyUsedInOrder) {
  SubgraphCache cache(3);
  for (int t : {1, 2, 3}) cache.Insert(t, 0, Shared(t));
  // Touch 1 so the LRU order (oldest first) becomes 2, 3, 1.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);

  cache.Insert(4, 0, Shared(4));  // evicts 2
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0), nullptr);
  cache.Insert(5, 0, Shared(5));  // LRU is now 1 (3 was just touched)
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(4, 0), nullptr);
  EXPECT_NE(cache.Lookup(5, 0), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 2u);
}

TEST(SubgraphCache, CapacityBoundHoldsAndBytesTrackEntries) {
  SubgraphCache cache(8);
  for (int t = 0; t < 100; ++t) cache.Insert(t, 0, Shared(t));
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 8u);
  EXPECT_EQ(s.inserts, 100u);
  EXPECT_EQ(s.evictions, 92u);
  // All entries are identical in shape, so resident bytes = 8 x one.
  EXPECT_EQ(s.resident_bytes, 8 * SubgraphCache::ApproxBytes(FakeSubgraph(0)));

  cache.Clear();
  s = cache.Stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.inserts, 100u);  // cumulative counters survive Clear
}

TEST(SubgraphCache, GraphVersionPartitionsEntries) {
  SubgraphCache cache(8);
  cache.Insert(5, /*version=*/1, Shared(5));
  EXPECT_EQ(cache.Lookup(5, 2), nullptr);  // new graph version: stale miss
  EXPECT_NE(cache.Lookup(5, 1), nullptr);
}

TEST(SubgraphCache, EvictWhereVersionBelowSweepsOnlyStaleVersions) {
  SubgraphCache cache(16);
  for (int t = 0; t < 4; ++t) cache.Insert(t, /*version=*/0, Shared(t));
  for (int t = 0; t < 3; ++t) cache.Insert(t, /*version=*/1, Shared(t));
  ASSERT_EQ(cache.Stats().entries, 7u);

  EXPECT_EQ(cache.EvictWhereVersionBelow(1), 4u);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.version_evictions, 4u);
  EXPECT_EQ(s.evictions, 0u);  // LRU-bound evictions stay separate
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.resident_bytes, 3 * SubgraphCache::ApproxBytes(FakeSubgraph(0)));
  // The survivors are exactly the version-1 entries.
  for (int t = 0; t < 4; ++t) EXPECT_EQ(cache.Lookup(t, 0), nullptr);
  for (int t = 0; t < 3; ++t) EXPECT_NE(cache.Lookup(t, 1), nullptr);

  // Idempotent: a second sweep at the same threshold finds nothing.
  EXPECT_EQ(cache.EvictWhereVersionBelow(1), 0u);
  EXPECT_EQ(cache.Stats().version_evictions, 4u);
}

TEST(SubgraphCache, VersionSweepCounterBalanceAfterMixedTraffic) {
  SubgraphCache cache(8);
  // Overflow the bound at version 0 (LRU evictions), then add version 1
  // and sweep: inserts must equal resident + LRU-evicted + version-swept.
  for (int t = 0; t < 20; ++t) cache.Insert(t, 0, Shared(t));
  for (int t = 0; t < 5; ++t) cache.Insert(t, 1, Shared(t));
  cache.EvictWhereVersionBelow(1);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 5u);
  EXPECT_EQ(s.inserts, s.entries + s.evictions + s.version_evictions);
  EXPECT_EQ(s.resident_bytes, 5 * SubgraphCache::ApproxBytes(FakeSubgraph(0)));
  // Zero stale-version residents: every surviving entry is at version 1.
  for (int t = 0; t < 20; ++t) EXPECT_EQ(cache.Lookup(t, 0), nullptr);
}

TEST(SubgraphCache, InsertRaceKeepsFirstEntry) {
  SubgraphCache cache(4);
  auto first = Shared(9);
  auto second = Shared(9);
  EXPECT_EQ(cache.Insert(9, 0, first).get(), first.get());
  // Losing builder: the incumbent wins and is what callers get back.
  EXPECT_EQ(cache.Insert(9, 0, second).get(), first.get());
  EXPECT_EQ(cache.Stats().inserts, 1u);
  EXPECT_EQ(cache.Lookup(9, 0).get(), first.get());
}

TEST(SubgraphCache, GetOrBuildBuildsOncePerKeyWhenWarm) {
  SubgraphCache cache(16);
  std::atomic<int> builds{0};
  auto builder = [&](int t) {
    builds.fetch_add(1);
    return FakeSubgraph(t);
  };
  for (int pass = 0; pass < 3; ++pass) {
    for (int t = 0; t < 8; ++t) {
      auto sub = cache.GetOrBuild(t, 0, builder);
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->center, t);
    }
  }
  EXPECT_EQ(builds.load(), 8);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, 24u);
  EXPECT_EQ(s.hits, 16u);
  EXPECT_GE(s.HitRate(), 0.6);
}

TEST(SubgraphCache, SingleFlightCoalescesConcurrentMissesOfOneKey) {
  // N threads miss the same cold key at once: exactly one build must run,
  // the rest park on the flight and share the builder's entry. The builder
  // waits (bounded) until every other thread has registered as coalesced,
  // so the assertion is exact rather than racy.
  SubgraphCache cache(8);
  constexpr int kThreads = 6;
  std::atomic<int> builds{0};
  auto builder = [&](int t) {
    builds.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (cache.Stats().coalesced_misses <
               static_cast<uint64_t>(kThreads - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return FakeSubgraph(t);
  };
  std::vector<std::shared_ptr<const BiasedSubgraph>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back(
        [&, w] { results[w] = cache.GetOrBuild(42, 0, builder); });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int w = 0; w < kThreads; ++w) {
    ASSERT_NE(results[w], nullptr);
    EXPECT_EQ(results[w].get(), results[0].get());  // one shared instance
  }
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(s.misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(s.coalesced_misses, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(s.inserts, 1u);
}

TEST(SubgraphCache, SingleFlightDoesNotSerializeDistinctKeys) {
  // Key 1's builder blocks until key 2's build has completed: if builds of
  // distinct keys were serialized, this would deadlock (bounded by the
  // timeout, which then fails the test).
  SubgraphCache cache(8);
  std::atomic<bool> other_done{false};
  std::thread blocked([&] {
    cache.GetOrBuild(1, 0, [&](int t) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!other_done.load() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return FakeSubgraph(t);
    });
  });
  std::thread other([&] {
    cache.GetOrBuild(2, 0, FakeSubgraph);
    other_done.store(true);
  });
  blocked.join();
  other.join();
  EXPECT_TRUE(other_done.load());
  EXPECT_EQ(cache.Stats().coalesced_misses, 0u);
  EXPECT_EQ(cache.Stats().inserts, 2u);
}

TEST(SubgraphCache, ThrowingBuilderRetiresTicketAndWakesWaiters) {
  // A builder that throws must not leave its single-flight ticket behind:
  // the key would otherwise park every future misser forever.
  SubgraphCache cache(8);
  struct BuildFailed {};
  EXPECT_THROW(
      cache.GetOrBuild(
          3, 0, [](int) -> BiasedSubgraph { throw BuildFailed{}; }),
      BuildFailed);
  // The key recovers: the next misser becomes a fresh builder.
  auto sub = cache.GetOrBuild(3, 0, FakeSubgraph);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->center, 3);

  // Concurrent flavour: waiters parked on a doomed flight wake and retry.
  std::atomic<int> attempts{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> succeeded{0};
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        try {
          auto got = cache.GetOrBuild(7, 0, [&](int t) -> BiasedSubgraph {
            // First two builders fail; later ones (retried waiters
            // included) succeed.
            if (attempts.fetch_add(1) < 2) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              throw BuildFailed{};
            }
            return FakeSubgraph(t);
          });
          if (got != nullptr && got->center == 7) succeeded.fetch_add(1);
          return;
        } catch (const BuildFailed&) {
          // The throwing builder's own caller retries too.
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(succeeded.load(), kThreads);
}

TEST(SubgraphCache, PersistentBuildFailureIsBoundedAndPropagatesStatus) {
  // When a key's builder fails persistently, callers must not livelock
  // chasing it: after kMaxBuildAttempts failed flights (joined or run),
  // GetOrBuild surfaces the flight's terminal Status to that caller.
  SubgraphCache cache(8);
  std::atomic<int> builds{0};
  const auto doomed = [&](int) -> BiasedSubgraph {
    builds.fetch_add(1);
    throw StatusError(Status::Unavailable("backing store down"));
  };

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> unavailable{0};
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      try {
        cache.GetOrBuild(11, 0, doomed);
      } catch (const StatusError& e) {
        // Both the builder's own caller and capped-out waiters land here
        // with the builder's original Status, not a generic wrapper.
        if (e.status().code() == StatusCode::kUnavailable) {
          unavailable.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unavailable.load(), kThreads);

  // Counter balance with failures in the mix: every miss either coalesced
  // onto a flight, failed its own flight, or inserted.
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.flight_failures, static_cast<uint64_t>(builds.load()));
  EXPECT_EQ(s.misses, s.coalesced_misses + s.flight_failures + s.inserts);
  EXPECT_EQ(s.inserts, 0u);

  // The key is not poisoned: a healthy builder fills it afterwards.
  auto sub = cache.GetOrBuild(11, 0, FakeSubgraph);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->center, 11);
}

TEST(SubgraphCache, SingleFlightStressOverSmallKeySet) {
  // Many threads hammer a handful of keys with a non-trivial builder: every
  // result must be correct, and builds must never exceed inserts + lost
  // Insert races (misses - coalesced = builds actually run).
  SubgraphCache cache(16);
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  constexpr int kKeys = 4;
  std::atomic<int> builds{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOps; ++i) {
        const int t = (i + w) % kKeys;
        // Version churn forces periodic rebuild storms.
        const uint64_t version = static_cast<uint64_t>(i / 100);
        auto sub = cache.GetOrBuild(t, version, [&](int target) {
          builds.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return FakeSubgraph(target);
        });
        if (sub == nullptr || sub->center != t) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  // Exact balance: every non-coalesced miss ran the builder exactly once.
  EXPECT_EQ(static_cast<uint64_t>(builds.load()),
            s.misses - s.coalesced_misses);
}

TEST(SubgraphCache, ConcurrentGetOrBuildIsSafeAndConsistent) {
  // Hammer one small cache from several threads over a key range larger
  // than capacity, so lookups, builds, inserts and evictions all interleave.
  // TSan (CI) checks the synchronisation; the asserts check the results.
  SubgraphCache cache(16);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr int kKeyRange = 64;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int t = (i * 13 + w * 7) % kKeyRange;
        auto sub = cache.GetOrBuild(t, 0, FakeSubgraph);
        if (sub == nullptr || sub->center != t) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);

  SubgraphCacheStats s = cache.Stats();
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_LE(s.entries, 16u);
  // Entries/bytes must balance: inserts - evictions = resident entries.
  EXPECT_EQ(s.inserts - s.evictions, s.entries);
  EXPECT_EQ(s.resident_bytes,
            s.entries * SubgraphCache::ApproxBytes(FakeSubgraph(0)));
}

}  // namespace
}  // namespace bsg

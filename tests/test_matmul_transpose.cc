// Transpose-aware dense kernels: MatMulTN (A^T B) and MatMulNT (A B^T)
// must match the materialised Transposed().MatMul(...) reference bit for
// bit across shapes and thread counts, and the MatMul autograd backward —
// which now runs on these kernels with no Transposed() call — must pass
// gradcheck.
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/ops.h"
#include "test_common.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace bsg {
namespace {

using bsg::testing::SameBits;
using bsg::testing::ThreadGuard;

// Shapes as (rows_a, cols_a): deliberately non-square, 1-row, 1-col, tall,
// wide, and larger than the row grain (16) / k-tile (64) so chunking and
// tiling edges are all exercised.
const std::vector<std::pair<int, int>> kShapes = {
    {3, 5}, {1, 7}, {7, 1}, {1, 1}, {19, 4}, {4, 19}, {70, 33}, {33, 70}};

TEST(MatMulTransposed, TNMatchesMaterialisedTransposeBitwise) {
  ThreadGuard guard;
  Rng rng(101);
  for (const auto& [n, m] : kShapes) {
    const int k = 1 + static_cast<int>(rng.UniformInt(40));
    Matrix a = Matrix::RandomNormal(n, m, 1.0, &rng);  // A^T is m x n
    Matrix b = Matrix::RandomNormal(n, k, 1.0, &rng);
    Matrix ref = a.Transposed().MatMul(b);
    for (int threads : {1, 2, 4}) {
      SetNumThreads(threads);
      EXPECT_TRUE(SameBits(a.MatMulTN(b), ref))
          << "shape " << n << "x" << m << " * " << n << "x" << k
          << " threads=" << threads;
    }
  }
}

TEST(MatMulTransposed, NTMatchesMaterialisedTransposeBitwise) {
  ThreadGuard guard;
  Rng rng(202);
  for (const auto& [n, m] : kShapes) {
    const int k = 1 + static_cast<int>(rng.UniformInt(40));
    Matrix a = Matrix::RandomNormal(n, m, 1.0, &rng);
    Matrix b = Matrix::RandomNormal(k, m, 1.0, &rng);  // B^T is m x k
    Matrix ref = a.MatMul(b.Transposed());
    for (int threads : {1, 2, 4}) {
      SetNumThreads(threads);
      EXPECT_TRUE(SameBits(a.MatMulNT(b), ref))
          << "shape " << n << "x" << m << " * (" << k << "x" << m
          << ")^T threads=" << threads;
    }
  }
}

TEST(MatMulTransposed, HandlesExactZeroEntries) {
  // The kernels skip a == 0.0 terms exactly like the reference; a sparse-ish
  // operand with explicit zeros must still match bitwise.
  ThreadGuard guard;
  Rng rng(303);
  Matrix a = Matrix::RandomNormal(37, 21, 1.0, &rng);
  Matrix b = Matrix::RandomNormal(37, 9, 1.0, &rng);
  for (size_t i = 0; i < a.size(); i += 3) a.data()[i] = 0.0;
  EXPECT_TRUE(SameBits(a.MatMulTN(b), a.Transposed().MatMul(b)));
  Matrix c = Matrix::RandomNormal(9, 21, 1.0, &rng);
  EXPECT_TRUE(SameBits(a.MatMulNT(c), a.MatMul(c.Transposed())));
}

TEST(MatMulTransposed, BackwardMatchesMaterialisedFormulasBitwise) {
  // The rewritten MatMul backward (dA = G B^T, dB = A^T G via the new
  // kernels) must reproduce the old Transposed()-materialising gradients
  // exactly.
  ThreadGuard guard;
  Rng rng(404);
  for (const auto& [n, m] : kShapes) {
    const int k = 1 + static_cast<int>(rng.UniformInt(24));
    Tensor a = MakeTensor(Matrix::RandomNormal(n, m, 1.0, &rng), true);
    Tensor b = MakeTensor(Matrix::RandomNormal(m, k, 1.0, &rng), true);
    Tensor c = MakeTensor(Matrix::RandomNormal(n, k, 1.0, &rng));
    Tensor y = ops::MatMul(a, b);
    Backward(ops::SumAll(ops::Mul(y, c)));
    // Seed gradient of y is exactly c's value here (d sum(y*c)/dy = c).
    Matrix want_da = c->value.MatMul(b->value.Transposed());
    Matrix want_db = a->value.Transposed().MatMul(c->value);
    EXPECT_TRUE(SameBits(a->grad, want_da)) << "dA " << n << "x" << m;
    EXPECT_TRUE(SameBits(b->grad, want_db)) << "dB " << m << "x" << k;
  }
}

TEST(MatMulTransposed, GradcheckThroughMatMulBackward) {
  ThreadGuard guard;
  Rng rng(505);
  for (const auto& [n, m] : {std::pair<int, int>{4, 6},
                             std::pair<int, int>{1, 5},
                             std::pair<int, int>{5, 1}}) {
    const int k = 3;
    Tensor a = MakeTensor(Matrix::RandomNormal(n, m, 0.7, &rng), true);
    Tensor b = MakeTensor(Matrix::RandomNormal(m, k, 0.7, &rng), true);
    Tensor c = MakeTensor(Matrix::RandomNormal(n, k, 0.7, &rng));
    bsg::testing::ExpectGradientsMatch({a, b}, [&] {
      return ops::MeanAll(ops::Mul(ops::MatMul(a, b), c));
    });
  }
}

TEST(MatMulTransposed, GradcheckChainedMatMuls) {
  // Two chained products: the inner result is both a child and a parent, so
  // both backward formulas run against a non-trivial upstream gradient.
  ThreadGuard guard;
  Rng rng(606);
  Tensor a = MakeTensor(Matrix::RandomNormal(3, 7, 0.5, &rng), true);
  Tensor b = MakeTensor(Matrix::RandomNormal(7, 4, 0.5, &rng), true);
  Tensor c = MakeTensor(Matrix::RandomNormal(4, 2, 0.5, &rng), true);
  bsg::testing::ExpectGradientsMatch({a, b, c}, [&] {
    return ops::MeanAll(ops::Tanh(ops::MatMul(ops::MatMul(a, b), c)));
  });
}

TEST(MatMulTransposed, GradcheckAtHigherThreadCounts) {
  ThreadGuard guard;
  Rng rng(707);
  Tensor a = MakeTensor(Matrix::RandomNormal(20, 17, 0.5, &rng), true);
  Tensor b = MakeTensor(Matrix::RandomNormal(17, 6, 0.5, &rng), true);
  for (int threads : {2, 4}) {
    SetNumThreads(threads);
    bsg::testing::ExpectGradientsMatch({a, b}, [&] {
      return ops::MeanAll(ops::MatMul(a, b));
    });
  }
}

// The historical MatMulNT kernel skipped zero elements of A inside the dot
// loop (`if (a == 0.0) continue;`) — a branch that blocked vectorization.
// Removing it must not change a bit: acc starts at +0.0, and accumulating
// the (+/-0.0) * finite products of the formerly-skipped terms leaves every
// accumulator unchanged (+0.0 + -0.0 == +0.0 in IEEE round-to-nearest).
// This pins the branchless kernel against a faithful reimplementation of
// the old one, on data salted with +0.0, -0.0 and all-zero rows.
TEST(MatMulTransposed, NTBranchlessMatchesZeroSkipReferenceBitwise) {
  ThreadGuard guard;
  Rng rng(303);
  auto zero_skip_reference = [](const Matrix& a, const Matrix& b) {
    Matrix out(a.rows(), b.rows());
    for (int i = 0; i < a.rows(); ++i) {
      for (int j = 0; j < b.rows(); ++j) {
        double acc = 0.0;
        for (int k = 0; k < a.cols(); ++k) {
          double v = a(i, k);
          if (v == 0.0) continue;  // the removed branch
          acc += v * b(j, k);
        }
        out(i, j) = acc;
      }
    }
    return out;
  };
  for (const auto& [n, m] : kShapes) {
    const int k = 1 + static_cast<int>(rng.UniformInt(40));
    Matrix a = Matrix::RandomNormal(n, m, 1.0, &rng);
    Matrix b = Matrix::RandomNormal(k, m, 1.0, &rng);
    // Salt with exact signed zeros: ~1/3 of A's entries, including the
    // -0.0 + 0.0 edge against both positive and negative B entries, plus
    // one all-zero row of alternating zero signs (a zero dot product).
    for (size_t i = 0; i < a.size(); ++i) {
      if (i % 3 == 0) a.data()[i] = (i % 2 == 0) ? 0.0 : -0.0;
    }
    for (int c = 0; c < m; ++c) a(0, c) = (c % 2 == 0) ? -0.0 : 0.0;
    Matrix ref = zero_skip_reference(a, b);
    for (int threads : {1, 2, 4}) {
      SetNumThreads(threads);
      EXPECT_TRUE(SameBits(a.MatMulNT(b), ref))
          << "shape " << n << "x" << m << " * (" << k << "x" << m
          << ")^T threads=" << threads;
    }
  }
}

TEST(MatMulTransposed, EmptyInnerDimensionYieldsZeros) {
  // n = 0 inner dimension: both kernels must return an all-zero product of
  // the right shape (and not touch out-of-range memory).
  Matrix a(0, 4);
  Matrix b(0, 3);
  Matrix tn = a.MatMulTN(b);
  EXPECT_EQ(tn.rows(), 4);
  EXPECT_EQ(tn.cols(), 3);
  for (size_t i = 0; i < tn.size(); ++i) EXPECT_EQ(tn.data()[i], 0.0);

  Matrix c(5, 0);
  Matrix d(2, 0);
  Matrix nt = c.MatMulNT(d);
  EXPECT_EQ(nt.rows(), 5);
  EXPECT_EQ(nt.cols(), 2);
  for (size_t i = 0; i < nt.size(); ++i) EXPECT_EQ(nt.data()[i], 0.0);
}

}  // namespace
}  // namespace bsg

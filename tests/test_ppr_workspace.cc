// PprWorkspace + CSR-native subgraph assembly: bitwise equality against the
// retained hash-map/reference implementations across randomized graphs,
// alphas, epsilons and dangling/disconnected edge cases; zero-allocation
// warm calls (exact, via a counting operator new); epoch wrap-around; and
// concurrent per-thread workspace reuse (run under TSan in CI).
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_subgraph.h"
#include "core/pretrain.h"
#include "graph/csr.h"
#include "ppr/ppr.h"
#include "ppr/ppr_workspace.h"
#include "util/alloc_probe.h"  // replaces operator new: exact alloc counts
#include "util/parallel.h"
#include "util/rng.h"

namespace bsg {
namespace {

Csr RandomConnectedGraph(int n, int extra_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < n; ++i) {
    edges.emplace_back(i, static_cast<int>(rng.UniformInt(i)));  // tree
  }
  for (int e = 0; e < extra_edges; ++e) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  return Csr::FromEdgesSymmetric(n, edges);
}

// Directed random graph: dangling nodes (no out-edges) and unreachable
// components occur naturally.
Csr RandomDirectedGraph(int n, int num_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  return Csr::FromEdges(n, edges);
}

// Bitwise equality: same nodes, same scores to the last bit (scores are
// positive, so == is bit equality).
void ExpectSparseVecBitEqual(const SparseVec& a, const SparseVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "node mismatch at " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "score mismatch at node "
                                        << a[i].first;
  }
}

TEST(PprWorkspace, BitIdenticalToHashMapOracleRandomized) {
  PprWorkspace ws;  // one workspace across every graph/config combination
  const double alphas[] = {0.1, 0.15, 0.5, 0.85};
  const double epsilons[] = {1e-3, 1e-4, 1e-6};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Csr sym = RandomConnectedGraph(60, 90, seed);
    Csr dir = RandomDirectedGraph(50, 70, seed + 100);
    for (const Csr* g : {&sym, &dir}) {
      for (double alpha : alphas) {
        for (double eps : epsilons) {
          PprConfig cfg;
          cfg.alpha = alpha;
          cfg.epsilon = eps;
          for (int source : {0, 7, g->num_nodes() - 1}) {
            SparseVec oracle = ApproximatePpr(*g, source, cfg);
            const SparseVec& ours = ws.ApproximatePpr(*g, source, cfg);
            ExpectSparseVecBitEqual(oracle, ours);
          }
        }
      }
    }
  }
  EXPECT_GT(ws.calls(), 0u);
}

TEST(PprWorkspace, EdgeCasesMatchOracle) {
  PprWorkspace ws;
  PprConfig cfg;
  // Isolated source (disconnected): all mass stays put.
  Csr isolated = Csr::FromEdgesSymmetric(4, {{1, 2}});
  ExpectSparseVecBitEqual(ApproximatePpr(isolated, 0, cfg),
                          ws.ApproximatePpr(isolated, 0, cfg));
  // Directed chain with a dangling sink.
  Csr chain = Csr::FromEdges(3, {{0, 1}, {1, 2}});
  ExpectSparseVecBitEqual(ApproximatePpr(chain, 0, cfg),
                          ws.ApproximatePpr(chain, 0, cfg));
  // Self-loop only.
  Csr loop = Csr::FromEdges(2, {{0, 0}});
  ExpectSparseVecBitEqual(ApproximatePpr(loop, 0, cfg),
                          ws.ApproximatePpr(loop, 0, cfg));
  // max_pushes cap bites mid-run.
  Csr big = RandomConnectedGraph(80, 160, 9);
  cfg.epsilon = 1e-9;
  cfg.max_pushes = 37;
  ExpectSparseVecBitEqual(ApproximatePpr(big, 3, cfg),
                          ws.ApproximatePpr(big, 3, cfg));
}

TEST(PprWorkspace, ReuseAcrossGraphSizesStaysCorrect) {
  // Grow, shrink, regrow: stale stamps from a larger graph must never leak
  // into a smaller one, and vice versa.
  PprWorkspace ws;
  PprConfig cfg;
  for (int n : {50, 8, 120, 8, 50}) {
    Csr g = RandomConnectedGraph(n, 2 * n, static_cast<uint64_t>(n));
    for (int s : {0, n / 2}) {
      ExpectSparseVecBitEqual(ApproximatePpr(g, s, cfg),
                              ws.ApproximatePpr(g, s, cfg));
    }
  }
}

TEST(PprWorkspace, EpochWrapAroundIsSafe) {
  PprWorkspace ws;
  PprConfig cfg;
  Csr g = RandomConnectedGraph(40, 60, 5);
  SparseVec oracle = ApproximatePpr(g, 11, cfg);
  ExpectSparseVecBitEqual(oracle, ws.ApproximatePpr(g, 11, cfg));
  // Force the epoch to the wrap boundary: the next two calls straddle the
  // uint32 overflow and must both still match.
  ws.OverrideEpochForTest(0xFFFFFFFEu);
  ExpectSparseVecBitEqual(oracle, ws.ApproximatePpr(g, 11, cfg));  // -> MAX
  ExpectSparseVecBitEqual(oracle, ws.ApproximatePpr(g, 11, cfg));  // wraps
  ExpectSparseVecBitEqual(oracle, ws.ApproximatePpr(g, 11, cfg));
}

TEST(PprWorkspace, WarmCallsPerformZeroHeapAllocations) {
  PprWorkspace ws;
  PprConfig cfg;
  cfg.epsilon = 1e-5;
  Csr g = RandomConnectedGraph(200, 600, 21);
  ws.ApproximatePpr(g, 0, cfg);  // cold: buffers grow once
  const uint64_t growths_after_cold = ws.buffer_growths();
  const uint64_t allocs_before = t_allocs;
  // Every source and a second epsilon: the dense arrays are sized to the
  // graph, so no input choice may allocate.
  for (int s = 0; s < g.num_nodes(); ++s) ws.ApproximatePpr(g, s, cfg);
  cfg.epsilon = 1e-3;
  for (int s = 0; s < g.num_nodes(); s += 7) ws.ApproximatePpr(g, s, cfg);
  EXPECT_EQ(t_allocs - allocs_before, 0u) << "warm ApproximatePpr allocated";
  EXPECT_EQ(ws.buffer_growths(), growths_after_cold);
}

TEST(PprWorkspace, BufferGrowthsOnlyOnCapacityIncrease) {
  PprWorkspace ws;
  PprConfig cfg;
  Csr small = RandomConnectedGraph(30, 40, 2);
  Csr large = RandomConnectedGraph(90, 150, 3);
  ws.ApproximatePpr(small, 0, cfg);
  const uint64_t g1 = ws.buffer_growths();
  EXPECT_GE(g1, 1u);
  ws.ApproximatePpr(small, 5, cfg);
  EXPECT_EQ(ws.buffer_growths(), g1);  // same size: no growth
  ws.ApproximatePpr(large, 0, cfg);
  EXPECT_EQ(ws.buffer_growths(), g1 + 1);  // grew once for the larger graph
  ws.ApproximatePpr(small, 1, cfg);        // shrink never reallocates
  EXPECT_EQ(ws.buffer_growths(), g1 + 1);
  EXPECT_EQ(ws.capacity_nodes(), 90);
}

// --- TopK workspace-buffer variant -----------------------------------------

TEST(TopKInto, ReusesCallerBufferAndMatchesTopK) {
  SparseVec buf;
  SparseVec v = {{0, 0.5}, {1, 0.1}, {2, 0.3}, {3, 0.1}};
  TopKInto(v, 2, &buf, /*exclude=*/0);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0].first, 2);
  EXPECT_EQ(buf[1].first, 1);  // tie with 3 broken by id
  // Warm reuse: same call again allocates nothing.
  const uint64_t before = t_allocs;
  TopKInto(v, 2, &buf, /*exclude=*/0);
  EXPECT_EQ(t_allocs - before, 0u);
  // k covering all candidates: full ordering, no truncation.
  TopKInto(v, 10, &buf);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0].first, 0);
  EXPECT_EQ(buf[1].first, 2);
  EXPECT_EQ(buf[2].first, 1);
  EXPECT_EQ(buf[3].first, 3);
  // k <= 0 clears the buffer.
  TopKInto(v, 0, &buf);
  EXPECT_TRUE(buf.empty());
  // Wrapper agreement over randomized inputs.
  Rng rng(4);
  SparseVec big;
  for (int i = 0; i < 64; ++i) {
    big.emplace_back(i, static_cast<double>(rng.UniformInt(8)) / 8.0);
  }
  for (int k : {0, 1, 5, 63, 64, 100}) {
    SparseVec into;
    TopKInto(big, k, &into, /*exclude=*/3);
    EXPECT_EQ(into, TopK(big, k, /*exclude=*/3));
  }
}

// --- CSR-native subgraph assembly vs the reference composition -------------

// The pre-workspace assembly path, kept verbatim as the oracle: hash-map
// PPR, fresh scoring vectors, Csr::InducedSubgraph + FromEdgesSymmetric.
Csr ReferenceSubgraphAdjacency(const Csr& relation,
                               const std::vector<int>& nodes) {
  const int m = static_cast<int>(nodes.size());
  Csr induced = relation.InducedSubgraph(nodes);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < m; ++i) edges.emplace_back(0, i);
  for (int u = 0; u < induced.num_nodes(); ++u) {
    for (const int* p = induced.NeighborsBegin(u);
         p != induced.NeighborsEnd(u); ++p) {
      edges.emplace_back(u, *p);
    }
  }
  return Csr::FromEdgesSymmetric(m, edges);
}

BiasedSubgraph ReferenceBiasedSubgraph(const HeteroGraph& g,
                                       const Matrix& hidden_reps, int center,
                                       const BiasedSubgraphConfig& cfg) {
  BiasedSubgraph out;
  out.center = center;
  for (const Csr& relation : g.relations) {
    SparseVec pi = ApproximatePpr(relation, center, cfg.ppr);
    double pi_max = 0.0;
    for (const auto& [node, score] : pi) {
      if (node != center) pi_max = std::max(pi_max, score);
    }
    if (pi_max <= 0.0) pi_max = 1.0;
    std::vector<std::pair<double, int>> scored;
    for (const auto& [node, score] : pi) {
      if (node == center) continue;
      double pi_norm = score / pi_max;
      double combined =
          cfg.ppr_only ? pi_norm
                       : cfg.lambda * pi_norm +
                             (1.0 - cfg.lambda) *
                                 NodeSimilarity(hidden_reps, center, node);
      scored.emplace_back(-combined, node);
    }
    int take = std::min<int>(cfg.k, static_cast<int>(scored.size()));
    std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
    RelationSubgraph rel;
    rel.nodes.push_back(center);
    for (int i = 0; i < take; ++i) rel.nodes.push_back(scored[i].second);
    rel.adj = ReferenceSubgraphAdjacency(relation, rel.nodes);
    out.per_relation.push_back(std::move(rel));
  }
  return out;
}

void ExpectSubgraphBitEqual(const BiasedSubgraph& a, const BiasedSubgraph& b) {
  EXPECT_EQ(a.center, b.center);
  ASSERT_EQ(a.per_relation.size(), b.per_relation.size());
  for (size_t r = 0; r < a.per_relation.size(); ++r) {
    EXPECT_EQ(a.per_relation[r].nodes, b.per_relation[r].nodes);
    const Csr& ca = a.per_relation[r].adj;
    const Csr& cb = b.per_relation[r].adj;
    EXPECT_EQ(ca.num_nodes(), cb.num_nodes());
    EXPECT_EQ(ca.indptr(), cb.indptr());
    EXPECT_EQ(ca.indices(), cb.indices());
    EXPECT_EQ(ca.weights(), cb.weights());
  }
}

HeteroGraph TwoRelationGraph(int n, uint64_t seed) {
  HeteroGraph g;
  g.name = "ppr-ws-test";
  g.num_nodes = n;
  g.relation_names = {"a", "b"};
  g.relations.push_back(RandomConnectedGraph(n, 2 * n, seed));
  g.relations.push_back(RandomDirectedGraph(n, 3 * n / 2, seed + 7));
  return g;
}

TEST(SubgraphWorkspaceAssembly, BitIdenticalToReferenceAcrossConfigs) {
  HeteroGraph g = TwoRelationGraph(70, 11);
  Rng rng(31);
  Matrix reps = Matrix::RandomNormal(g.num_nodes, 8, 1.0, &rng);
  SubgraphWorkspace ws;
  for (int k : {1, 4, 16, 1000}) {
    for (bool ppr_only : {false, true}) {
      for (double lambda : {0.0, 0.5, 1.0}) {
        BiasedSubgraphConfig cfg;
        cfg.k = k;
        cfg.lambda = lambda;
        cfg.ppr_only = ppr_only;
        for (int center : {0, 17, g.num_nodes - 1}) {
          ExpectSubgraphBitEqual(
              ReferenceBiasedSubgraph(g, reps, center, cfg),
              BuildBiasedSubgraph(g, reps, center, cfg, &ws));
        }
      }
    }
  }
}

TEST(SubgraphWorkspaceAssembly, ThreadLocalPathMatchesExplicitWorkspace) {
  HeteroGraph g = TwoRelationGraph(40, 3);
  Rng rng(5);
  Matrix reps = Matrix::RandomNormal(g.num_nodes, 6, 1.0, &rng);
  BiasedSubgraphConfig cfg;
  cfg.k = 8;
  SubgraphWorkspace ws;
  for (int center = 0; center < g.num_nodes; center += 5) {
    ExpectSubgraphBitEqual(BuildBiasedSubgraph(g, reps, center, cfg, &ws),
                           BuildBiasedSubgraph(g, reps, center, cfg));
  }
}

TEST(SubgraphWorkspaceAssembly, WarmAssemblyAllocatesOnlyTheSubgraph) {
  HeteroGraph g = TwoRelationGraph(80, 13);
  Rng rng(7);
  Matrix reps = Matrix::RandomNormal(g.num_nodes, 8, 1.0, &rng);
  BiasedSubgraphConfig cfg;
  cfg.k = 12;
  SubgraphWorkspace ws;
  // Warm-up sweep: scratch reaches steady state for every centre.
  for (int center = 0; center < g.num_nodes; ++center) {
    BuildBiasedSubgraph(g, reps, center, cfg, &ws);
  }
  const uint64_t growths = ws.buffer_growths();
  for (int center = 0; center < g.num_nodes; ++center) {
    const uint64_t before = t_allocs;
    BiasedSubgraph sub = BuildBiasedSubgraph(g, reps, center, cfg, &ws);
    const uint64_t during = t_allocs - before;
    // The only allocations are the returned subgraph's own storage: the
    // per_relation vector, plus per relation the nodes vector and the
    // adjacency's arrays (indptr sentinel {0} from Csr's default ctor, the
    // sized indptr, the indices buffer, and the moved-over temporary's
    // sentinel) — no scratch.
    const uint64_t output_allocs =
        1 + 5 * static_cast<uint64_t>(sub.per_relation.size());
    EXPECT_LE(during, output_allocs) << "centre " << center;
  }
  EXPECT_EQ(ws.buffer_growths(), growths);
}

TEST(SubgraphWorkspaceAssembly, ConcurrentPerThreadReuseIsRaceFreeAndExact) {
  // Four raw threads assemble disjoint centre ranges through their own
  // thread-local workspaces against one shared read-only graph; results
  // must equal a fresh-workspace serial sweep. TSan (CI) checks the "no
  // shared scratch" claim.
  HeteroGraph g = TwoRelationGraph(64, 17);
  Rng rng(23);
  Matrix reps = Matrix::RandomNormal(g.num_nodes, 8, 1.0, &rng);
  BiasedSubgraphConfig cfg;
  cfg.k = 10;

  std::vector<BiasedSubgraph> serial(g.num_nodes);
  for (int v = 0; v < g.num_nodes; ++v) {
    SubgraphWorkspace fresh;
    serial[v] = BuildBiasedSubgraph(g, reps, v, cfg, &fresh);
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;  // repeated rounds exercise warm reuse
  std::vector<BiasedSubgraph> parallel(g.num_nodes);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Disjoint centre stripe per thread: every slot has one writer.
      for (int round = 0; round < kRounds; ++round) {
        for (int center = w; center < g.num_nodes; center += kThreads) {
          BiasedSubgraph sub = BuildBiasedSubgraph(g, reps, center, cfg);
          if (round + 1 == kRounds) parallel[center] = std::move(sub);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int v = 0; v < g.num_nodes; ++v) {
    ExpectSubgraphBitEqual(serial[v], parallel[v]);
  }
}

TEST(SubgraphWorkspaceAssembly, ParallelForSweepMatchesSerial) {
  // BuildAllSubgraphs drives the pool with thread-local workspaces; the
  // result must be identical at any thread count (the broader invariant is
  // also asserted in test_parallel.cc — this pins the workspace path).
  HeteroGraph g = TwoRelationGraph(48, 29);
  Rng rng(41);
  Matrix reps = Matrix::RandomNormal(g.num_nodes, 8, 1.0, &rng);
  BiasedSubgraphConfig cfg;
  cfg.k = 6;
  SetNumThreads(1);
  std::vector<BiasedSubgraph> s1 = BuildAllSubgraphs(g, reps, cfg);
  SetNumThreads(4);
  std::vector<BiasedSubgraph> s4 = BuildAllSubgraphs(g, reps, cfg);
  SetNumThreads(0);
  ASSERT_EQ(s1.size(), s4.size());
  for (size_t v = 0; v < s1.size(); ++v) ExpectSubgraphBitEqual(s1[v], s4[v]);
}

// --- Csr::FromSortedRows ----------------------------------------------------

TEST(CsrFromSortedRows, MatchesFromAdjacencyListsAndIgnoresExtraRows) {
  std::vector<std::vector<int>> rows = {{1, 2}, {0}, {0, 3}, {2}, {9, 9, 9}};
  Csr a = Csr::FromSortedRows(4, rows);  // row 4 ignored
  std::vector<std::vector<int>> lists(rows.begin(), rows.begin() + 4);
  Csr b = Csr::FromAdjacencyLists(std::move(lists));
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.indptr(), b.indptr());
  EXPECT_EQ(a.indices(), b.indices());
  EXPECT_TRUE(a.Validate().ok());
}

}  // namespace
}  // namespace bsg

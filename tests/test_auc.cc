// ROC-AUC metric: hand-computed cases, ties, invariances.
#include <gtest/gtest.h>

#include "train/metrics.h"
#include "util/rng.h"

namespace bsg {
namespace {

std::vector<int> AllOf(size_t n) {
  std::vector<int> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int>(i);
  return idx;
}

TEST(RocAuc, PerfectSeparationIsOne) {
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, AllOf(4)), 1.0);
}

TEST(RocAuc, PerfectInversionIsZero) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, AllOf(4)), 0.0);
}

TEST(RocAuc, AllTiedIsHalf) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, AllOf(4)), 0.5);
}

TEST(RocAuc, HandComputedMixedCase) {
  // scores: n1=0.1, p1=0.4, n2=0.35, p2=0.8 -> pairs: (p1>n1), (p1>n2),
  // (p2>n1), (p2>n2) => all 4 of 4 correct minus (p1 vs n2: 0.4>0.35 ok).
  std::vector<double> scores = {0.1, 0.4, 0.35, 0.8};
  std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, AllOf(4)), 1.0);
  // Now flip one pair: p1 below n2.
  scores[1] = 0.3;
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, AllOf(4)), 0.75);
}

TEST(RocAuc, SingleClassReturnsHalf) {
  std::vector<double> scores = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(RocAuc(scores, {0, 0}, AllOf(2)), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc(scores, {1, 1}, AllOf(2)), 0.5);
}

TEST(RocAuc, SubsetRestrictionApplies) {
  std::vector<double> scores = {0.9, 0.1, 0.8};
  std::vector<int> labels = {0, 0, 1};  // node 0 is a high-scoring human
  // Over everyone, the human at 0.9 costs a pair.
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, AllOf(3)), 0.5);
  // Excluding it, separation is perfect.
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels, {1, 2}), 1.0);
}

TEST(RocAuc, InvariantUnderMonotoneTransform) {
  Rng rng(7);
  std::vector<double> scores(50);
  std::vector<int> labels(50);
  for (int i = 0; i < 50; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(2));
    scores[i] = rng.Normal(labels[i] * 1.0, 1.0);
  }
  double base = RocAuc(scores, labels, AllOf(50));
  std::vector<double> warped(50);
  for (int i = 0; i < 50; ++i) warped[i] = std::exp(3.0 * scores[i]) + 7.0;
  EXPECT_NEAR(RocAuc(warped, labels, AllOf(50)), base, 1e-12);
}

TEST(RocAuc, BotScoresMonotoneInLogitGap) {
  Matrix logits = Matrix::FromRows({{2.0, 1.0}, {0.0, 3.0}, {1.0, 1.0}});
  std::vector<double> s = BotScores(logits);
  EXPECT_DOUBLE_EQ(s[0], -1.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  Rng rng(9);
  std::vector<double> scores(4000);
  std::vector<int> labels(4000);
  for (int i = 0; i < 4000; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = static_cast<int>(rng.UniformInt(2));
  }
  EXPECT_NEAR(RocAuc(scores, labels, AllOf(4000)), 0.5, 0.03);
}

}  // namespace
}  // namespace bsg

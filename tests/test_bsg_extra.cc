// Additional BSG4Bot behaviours: transfer evaluation, determinism,
// relation-weight diagnostics, minimum-epoch control, and subgraph
// stability under config extremes.
#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "test_common.h"

namespace bsg {
namespace {

using bsg::testing::MultiRelationGraph;
using bsg::testing::SmallGraph;

Bsg4BotConfig TinyCfg() {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 25;
  cfg.pretrain.hidden = 12;
  cfg.subgraph.k = 8;
  cfg.hidden = 12;
  cfg.max_epochs = 6;
  cfg.min_epochs = 1;
  cfg.patience = 6;
  cfg.seed = 3;
  return cfg;
}

TEST(Bsg4BotExtra, TransferToSelfMatchesDirectEvaluation) {
  Bsg4Bot model(SmallGraph(), TinyCfg());
  model.Fit();
  std::vector<int> nodes = SmallGraph().test_idx;
  // Direct accuracy.
  std::vector<int> preds = model.Predict(nodes);
  int correct = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (preds[i] == SmallGraph().labels[nodes[i]]) ++correct;
  }
  double direct = static_cast<double>(correct) / nodes.size();
  // Transfer onto an identically-configured probe of the same graph.
  Bsg4Bot probe(SmallGraph(), TinyCfg());
  double transferred = model.TransferEvaluate(&probe, nodes);
  EXPECT_NEAR(transferred, direct, 1e-12);
}

TEST(Bsg4BotExtra, DeterministicAcrossIdenticalRuns) {
  Bsg4Bot a(SmallGraph(), TinyCfg());
  Bsg4Bot b(SmallGraph(), TinyCfg());
  TrainResult ra = a.Fit();
  TrainResult rb = b.Fit();
  EXPECT_DOUBLE_EQ(ra.test.accuracy, rb.test.accuracy);
  EXPECT_DOUBLE_EQ(ra.test.f1, rb.test.f1);
  ASSERT_EQ(ra.loss_history.size(), rb.loss_history.size());
  for (size_t i = 0; i < ra.loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.loss_history[i], rb.loss_history[i]);
  }
}

TEST(Bsg4BotExtra, RelationWeightsFormSimplexAfterFit) {
  Bsg4Bot model(MultiRelationGraph(), TinyCfg());
  model.Fit();
  const std::vector<double>& w = model.relation_weights();
  ASSERT_EQ(w.size(),
            static_cast<size_t>(MultiRelationGraph().num_relations()));
  double total = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Bsg4BotExtra, MinEpochsPreventsPrematureStop) {
  Bsg4BotConfig cfg = TinyCfg();
  cfg.max_epochs = 12;
  cfg.min_epochs = 12;
  cfg.patience = 1;  // would stop immediately without min_epochs
  Bsg4Bot model(SmallGraph(), cfg);
  TrainResult res = model.Fit();
  EXPECT_EQ(res.epochs_run, 12);
}

TEST(Bsg4BotExtra, KLargerThanGraphIsClamped) {
  Bsg4BotConfig cfg = TinyCfg();
  cfg.subgraph.k = 100000;  // more than any PPR candidate set
  Bsg4Bot model(SmallGraph(), cfg);
  model.Prepare();
  for (const BiasedSubgraph& sub : model.subgraphs()) {
    for (const RelationSubgraph& rel : sub.per_relation) {
      EXPECT_LE(static_cast<int>(rel.nodes.size()),
                SmallGraph().num_nodes);
    }
  }
}

TEST(Bsg4BotExtra, PrepareIsIdempotent) {
  Bsg4Bot model(SmallGraph(), TinyCfg());
  model.Prepare();
  double first = model.prepare_seconds();
  const void* subs = model.subgraphs().data();
  model.Prepare();  // must be a no-op
  EXPECT_EQ(model.prepare_seconds(), first);
  EXPECT_EQ(model.subgraphs().data(), subs);
}

TEST(Bsg4BotExtra, LossHistoryDecreasesOverall) {
  Bsg4BotConfig cfg = TinyCfg();
  cfg.max_epochs = 15;
  cfg.min_epochs = 15;
  cfg.patience = 15;
  Bsg4Bot model(SmallGraph(), cfg);
  TrainResult res = model.Fit();
  ASSERT_GE(res.loss_history.size(), 10u);
  EXPECT_LT(res.loss_history.back(), res.loss_history.front());
}

}  // namespace
}  // namespace bsg

// Per-request tracing: the disarmed fast path allocates nothing (asserted
// with the counting allocator probe), sampling is deterministic 1-in-N on
// the admission sequence, span recording is bounded (fixed capacity with
// truncation counting, bounded completed ring, bounded live slots), and —
// the end-to-end contract — a retried-then-served request traced through
// the real ServingFrontend + DetectionEngine shows every pipeline stage
// with span durations summing to at most the request's e2e latency. The
// TSan CI stage runs this binary.
#include <vector>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frontend.h"
#include "test_common.h"
#include "util/alloc_probe.h"
#include "util/fault.h"

namespace bsg {
namespace {

using obs::CompletedTrace;
using obs::RequestTrace;
using obs::Tracer;
using obs::TraceStage;
using testing::SmallGraph;

/// Leaves the global tracer disarmed when a test scope exits.
struct TracerGuard {
  ~TracerGuard() { Tracer::Global().Disable(); }
};

struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().Disarm(); }
};

TEST(Tracer, DisabledPathReturnsNullAndNeverAllocates) {
  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  // Warm the thread-local shard index and any lazy statics first.
  ASSERT_EQ(tracer.MaybeStart(1), nullptr);

  const uint64_t before = t_allocs;
  for (int i = 0; i < 100000; ++i) {
    if (tracer.MaybeStart(7) != nullptr) {
      FAIL() << "disabled tracer sampled a request";
    }
  }
  const uint64_t after = t_allocs;
  // The whole point of the g_trace_sample_every fast path: one relaxed
  // load and a predicted branch, zero heap traffic.
  EXPECT_EQ(after - before, 0u);
}

TEST(Tracer, SamplingIsDeterministicOnAdmissionSequence) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  for (int round = 0; round < 2; ++round) {
    // Enable resets the admission sequence, so a replayed workload
    // samples the same requests.
    tracer.Enable(/*sample_every=*/3);
    std::vector<int> sampled_at;
    for (int i = 0; i < 9; ++i) {
      RequestTrace* t = tracer.MaybeStart(1);
      if (t != nullptr) {
        sampled_at.push_back(i);
        EXPECT_EQ(t->seq, static_cast<uint64_t>(i));
        tracer.Finish(t, "ok", 1);
      }
    }
    EXPECT_EQ(sampled_at, (std::vector<int>{0, 3, 6})) << "round " << round;
    EXPECT_EQ(tracer.Stats().sampled, 3u);
    EXPECT_EQ(tracer.Stats().completed, 3u);
  }
}

TEST(Tracer, SpanRecordingAndStageQueries) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.Enable(1);
  RequestTrace* t = tracer.MaybeStart(4);
  ASSERT_NE(t, nullptr);
  t->AddSpan(TraceStage::kQueueWait, 100, 10);
  t->AddSpan(TraceStage::kForward, 200, 30, /*chunk=*/0);
  t->AddSpan(TraceStage::kForward, 300, 40, /*chunk=*/1);
  EXPECT_EQ(t->SpanCount(), 3u);
  EXPECT_TRUE(t->HasStage(TraceStage::kQueueWait));
  EXPECT_FALSE(t->HasStage(TraceStage::kBackoff));
  EXPECT_EQ(t->StageTotalNs(TraceStage::kForward), 70u);
  EXPECT_EQ(t->TotalSpanNs(), 80u);
  tracer.Finish(t, "ok", 1);

  std::vector<CompletedTrace> done = tracer.Completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].num_targets, 4u);
  EXPECT_EQ(done[0].status, "ok");
  EXPECT_EQ(done[0].spans.size(), 3u);
  EXPECT_EQ(done[0].StageTotalNs(TraceStage::kForward), 70u);
  EXPECT_EQ(done[0].spans[1].chunk, 0);
  EXPECT_EQ(done[0].spans[2].chunk, 1);
}

TEST(Tracer, SpanCapacityTruncatesInsteadOfGrowing) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.Enable(1);
  RequestTrace* t = tracer.MaybeStart(1);
  ASSERT_NE(t, nullptr);
  for (size_t i = 0; i < RequestTrace::kMaxSpans + 5; ++i) {
    t->AddSpan(TraceStage::kForward, i, 1);
  }
  EXPECT_EQ(t->SpanCount(), RequestTrace::kMaxSpans);
  tracer.Finish(t, "ok", 1);
  EXPECT_EQ(tracer.Stats().truncated_spans, 5u);
  std::vector<CompletedTrace> done = tracer.Completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].spans.size(), RequestTrace::kMaxSpans);
}

TEST(Tracer, CompletedRingIsBoundedOldestEvicted) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*sample_every=*/1, /*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    RequestTrace* t = tracer.MaybeStart(1);
    ASSERT_NE(t, nullptr) << i;
    tracer.Finish(t, "ok", 1);
  }
  std::vector<CompletedTrace> done = tracer.Completed();
  ASSERT_EQ(done.size(), 4u);
  // Oldest first, and only the newest four survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(done[static_cast<size_t>(i)].seq,
              static_cast<uint64_t>(6 + i));
  }
  EXPECT_EQ(tracer.Stats().completed, 10u);
}

TEST(Tracer, LiveSlotExhaustionDropsAndCounts) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*sample_every=*/1, /*ring_capacity=*/64, /*max_live=*/2);
  // Check out every live slot (the pool only ever grows across Enables,
  // so drain it rather than assuming its exact size), then one more
  // sample hit must drop — not allocate.
  std::vector<RequestTrace*> live;
  for (int i = 0; i < 1000; ++i) {
    RequestTrace* t = tracer.MaybeStart(1);
    if (t == nullptr) break;
    live.push_back(t);
  }
  ASSERT_GE(live.size(), 2u);
  ASSERT_LT(live.size(), 1000u);
  EXPECT_EQ(tracer.Stats().dropped_no_slot, 1u);
  EXPECT_EQ(tracer.MaybeStart(1), nullptr);
  EXPECT_EQ(tracer.Stats().dropped_no_slot, 2u);
  // Finishing one recycles its slot for the next sample hit.
  tracer.Finish(live.back(), "ok", 1);
  live.pop_back();
  EXPECT_NE(tracer.MaybeStart(1), nullptr);
  for (RequestTrace* t : live) tracer.Abandon(t);
}

TEST(Tracer, AbandonRecyclesWithoutRecording) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.Enable(1);
  RequestTrace* t = tracer.MaybeStart(1);
  ASSERT_NE(t, nullptr);
  tracer.Abandon(t);
  EXPECT_EQ(tracer.Stats().abandoned, 1u);
  EXPECT_EQ(tracer.Stats().completed, 0u);
  EXPECT_TRUE(tracer.Completed().empty());
  // Null is a no-op for both resolve paths.
  tracer.Finish(nullptr, "ok", 1);
  tracer.Abandon(nullptr);
}

TEST(Tracer, DisableLeavesInFlightTracesValid) {
  TracerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.Enable(1);
  RequestTrace* t = tracer.MaybeStart(2);
  ASSERT_NE(t, nullptr);
  tracer.Disable();
  EXPECT_EQ(tracer.MaybeStart(1), nullptr);
  t->AddSpan(TraceStage::kForward, 1, 2);
  tracer.Finish(t, "ok", 1);  // slot reclaimed, ring keeps the trace
  EXPECT_EQ(tracer.Completed().size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: a traced request through the real serving stack.

Bsg4BotConfig TraceModelConfig() {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 8;
  cfg.subgraph.k = 10;
  cfg.hidden = 12;
  cfg.batch_size = 16;
  cfg.max_epochs = 3;
  cfg.min_epochs = 3;
  cfg.seed = 31;
  return cfg;
}

Bsg4Bot& TrainedModel() {
  static Bsg4Bot* model = [] {
    Bsg4Bot* m = new Bsg4Bot(SmallGraph(), TraceModelConfig());
    m->Fit();
    return m;
  }();
  return *model;
}

TEST(TraceIntegration, RetriedRequestShowsEveryStageAndSpansFitE2e) {
  TracerGuard tracer_guard;
  FaultGuard fault_guard;
  Bsg4Bot& model = TrainedModel();
  DetectionEngine engine(&model, EngineConfig{});
  FrontendConfig cfg;
  cfg.workers = 1;
  cfg.max_retries = 2;
  ServingFrontend frontend(&engine, cfg);

  // The first forward pass fails retryably, the retry serves: the trace
  // must show the whole story — queue wait, a cold-cache probe + build +
  // stack, the backoff sleep, the re-assembly, and the successful forward.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("engine.forward:first=1", /*seed=*/7)
                  .ok());
  Tracer::Global().Enable(/*sample_every=*/1);

  // One single-chunk request (8 targets < batch_size 16): every stage runs
  // sequentially on one worker, so span durations are disjoint and must
  // sum to <= the end-to-end latency. (Multi-chunk requests overlap
  // assembly with forwards by design — no such bound holds there.)
  const std::vector<int>& pool = SmallGraph().test_idx;
  std::vector<int> targets(pool.begin(), pool.begin() + 8);
  FrontendResult res = frontend.ScoreBatch(targets);
  ASSERT_EQ(res.status, RequestStatus::kOk);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.scores.size(), targets.size());

  std::vector<CompletedTrace> done = Tracer::Global().Completed();
  ASSERT_EQ(done.size(), 1u);
  const CompletedTrace& t = done[0];
  EXPECT_EQ(t.status, "ok");
  EXPECT_EQ(t.attempts, 2);
  EXPECT_EQ(t.num_targets, targets.size());

  for (TraceStage stage :
       {TraceStage::kQueueWait, TraceStage::kCacheProbe, TraceStage::kBuild,
        TraceStage::kStack, TraceStage::kForward, TraceStage::kBackoff}) {
    EXPECT_TRUE(t.HasStage(stage)) << obs::TraceStageName(stage);
  }
  EXPECT_FALSE(t.HasStage(TraceStage::kDegraded));

  // The retry re-probes (now hitting the cache) and re-stacks: two probe
  // and two stack spans, but only one build (the subgraphs are cached) and
  // one forward (the faulted attempt failed before its forward span).
  int probes = 0, builds = 0, stacks = 0, forwards = 0;
  for (const obs::TraceSpan& s : t.spans) {
    probes += s.stage == TraceStage::kCacheProbe;
    builds += s.stage == TraceStage::kBuild;
    stacks += s.stage == TraceStage::kStack;
    forwards += s.stage == TraceStage::kForward;
  }
  EXPECT_EQ(probes, 2);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(stacks, 2);
  EXPECT_EQ(forwards, 1);

  // Every span lies inside the request window and the stages are disjoint,
  // so the stage breakdown can never claim more time than the request
  // actually took.
  EXPECT_GT(t.ElapsedNs(), 0u);
  EXPECT_LE(t.TotalSpanNs(), t.ElapsedNs());
  for (const obs::TraceSpan& s : t.spans) {
    EXPECT_GE(s.start_ns, t.start_ns) << obs::TraceStageName(s.stage);
    EXPECT_LE(s.start_ns + s.dur_ns, t.end_ns) << obs::TraceStageName(s.stage);
  }

  // The always-on histograms saw the same request regardless of tracing.
  const obs::RegistrySnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramSnapshot* lat =
      snap.FindHistogram(obs::metric::kRequestLatencyMs);
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->count, 1u);
}

TEST(TraceIntegration, UntracedRequestsRecordNoTraces) {
  TracerGuard tracer_guard;
  Tracer::Global().Enable(/*sample_every=*/1);
  Tracer::Global().Disable();
  Bsg4Bot& model = TrainedModel();
  DetectionEngine engine(&model, EngineConfig{});
  FrontendConfig cfg;
  cfg.workers = 1;
  ServingFrontend frontend(&engine, cfg);
  const std::vector<int>& pool = SmallGraph().test_idx;
  std::vector<int> targets(pool.begin(), pool.begin() + 8);
  FrontendResult res = frontend.ScoreBatch(targets);
  ASSERT_EQ(res.status, RequestStatus::kOk);
  EXPECT_TRUE(Tracer::Global().Completed().empty());
  EXPECT_EQ(Tracer::Global().Stats().sampled, 0u);
}

}  // namespace
}  // namespace bsg

// DetectionEngine: batched scores bit-identical to PredictLogits, on-demand
// cache-backed subgraph assembly (no precomputed store), warm-cache hit
// rate, the startup pool-Trim policy, and single-target scoring.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "serve/engine.h"
#include "test_common.h"
#include "util/buffer_pool.h"

namespace bsg {
namespace {

using testing::SameBits;
using testing::SmallGraph;

Bsg4BotConfig EngineModelConfig() {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 8;
  cfg.subgraph.k = 10;
  cfg.hidden = 12;
  cfg.batch_size = 48;  // several chunks over the test split
  cfg.max_epochs = 3;
  cfg.min_epochs = 3;
  cfg.seed = 21;
  return cfg;
}

// One trained model per binary; every test builds its own engine on top.
Bsg4Bot& TrainedModel() {
  static Bsg4Bot* model = [] {
    Bsg4Bot* m = new Bsg4Bot(SmallGraph(), EngineModelConfig());
    m->Fit();
    return m;
  }();
  return *model;
}

TEST(DetectionEngine, BatchedScoresMatchPredictLogitsBitwise) {
  Bsg4Bot& model = TrainedModel();
  const std::vector<int>& targets = SmallGraph().test_idx;
  ASSERT_GT(targets.size(), static_cast<size_t>(model.config().batch_size));
  Matrix oracle = model.PredictLogits(targets);

  DetectionEngine engine(&model, EngineConfig{});
  EXPECT_EQ(engine.batch_size(), model.config().batch_size);
  std::vector<Score> scores = engine.ScoreBatch(targets);
  ASSERT_EQ(scores.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(scores[i].target, targets[i]);
    // Same chunking, same stacking, dropout off -> the engine's on-demand
    // cache-assembled subgraphs must reproduce the stored-subgraph logits
    // exactly.
    EXPECT_EQ(scores[i].logit_human, oracle(static_cast<int>(i), 0)) << i;
    EXPECT_EQ(scores[i].logit_bot, oracle(static_cast<int>(i), 1)) << i;
    EXPECT_EQ(scores[i].label,
              scores[i].logit_bot > scores[i].logit_human ? 1 : 0);
    EXPECT_GE(scores[i].bot_prob, 0.0);
    EXPECT_LE(scores[i].bot_prob, 1.0);
  }
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.targets_scored, targets.size());
  EXPECT_GT(stats.batches_run, 1u);
  EXPECT_EQ(stats.cache.lookups, targets.size());
  EXPECT_EQ(stats.cache.misses, targets.size());  // cold cache
}

TEST(DetectionEngine, WarmCacheServesRepeatTrafficFromMemory) {
  Bsg4Bot& model = TrainedModel();
  const std::vector<int>& targets = SmallGraph().test_idx;
  EngineConfig cfg;
  cfg.cache_capacity = targets.size() + 8;
  DetectionEngine engine(&model, cfg);

  std::vector<Score> cold = engine.ScoreBatch(targets);
  std::vector<Score> warm = engine.ScoreBatch(targets);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].logit_bot, warm[i].logit_bot);
  }
  EngineStats stats = engine.Stats();
  // Pass 2 hits on every probe, so the overall rate is ~0.5 and the warm
  // pass alone is 1.0.
  EXPECT_EQ(stats.cache.hits, targets.size());
  EXPECT_GE(stats.cache.HitRate(), 0.45);
  EXPECT_EQ(stats.cache.entries, targets.size());
}

TEST(DetectionEngine, BoundedCacheEvictsButStaysCorrect) {
  Bsg4Bot& model = TrainedModel();
  const std::vector<int>& targets = SmallGraph().test_idx;
  EngineConfig cfg;
  cfg.cache_capacity = 8;  // far below the working set
  DetectionEngine engine(&model, cfg);
  std::vector<Score> through_tiny_cache = engine.ScoreBatch(targets);

  Matrix oracle = model.PredictLogits(targets);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(through_tiny_cache[i].logit_bot, oracle(static_cast<int>(i), 1));
  }
  EngineStats stats = engine.Stats();
  EXPECT_LE(stats.cache.entries, 8u);
  EXPECT_GT(stats.cache.evictions, 0u);
}

TEST(DetectionEngine, ScoreOneMatchesBatchOfOne) {
  Bsg4Bot& model = TrainedModel();
  const int target = SmallGraph().test_idx.front();
  DetectionEngine engine(&model, EngineConfig{});
  Score one = engine.ScoreOne(target);
  std::vector<Score> batch = engine.ScoreBatch({target});
  ASSERT_EQ(batch.size(), 1u);
  // Identical batch composition (a single centre) -> identical logits; the
  // second call is also the cache's first hit.
  EXPECT_EQ(one.logit_human, batch[0].logit_human);
  EXPECT_EQ(one.logit_bot, batch[0].logit_bot);
  EXPECT_EQ(one.bot_prob, batch[0].bot_prob);
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.single_requests, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(DetectionEngine, StartupTrimReleasesColdSlabsAndIsCounted) {
  Bsg4Bot& model = TrainedModel();
  // Park some slabs so the startup trim has something to release.
  { Matrix scratch(256, 256, 1.0); }
  BufferPoolStats before = BufferPool::Global().Stats();
  ASSERT_GT(before.free_bytes, 0u);

  DetectionEngine engine(&model, EngineConfig{});
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.pool_trimmed_bytes, before.free_bytes);
  BufferPoolStats after = BufferPool::Global().Stats();
  EXPECT_EQ(after.free_bytes, 0u);
  EXPECT_EQ(after.trims, before.trims + 1);
  EXPECT_EQ(after.trimmed_bytes, before.trimmed_bytes + before.free_bytes);

  // Opting out leaves the pool alone.
  { Matrix scratch(128, 128, 1.0); }
  BufferPoolStats parked = BufferPool::Global().Stats();
  EngineConfig no_trim;
  no_trim.trim_pool_on_start = false;
  DetectionEngine engine2(&model, no_trim);
  EXPECT_EQ(engine2.Stats().pool_trimmed_bytes, 0u);
  EXPECT_EQ(BufferPool::Global().Stats().free_bytes, parked.free_bytes);
}

TEST(DetectionEngine, ServingForwardPassesRecycleThroughThePool) {
  Bsg4Bot& model = TrainedModel();
  const std::vector<int>& targets = SmallGraph().test_idx;
  DetectionEngine engine(&model, EngineConfig{});
  engine.ScoreBatch(targets);  // cold: shapes enter the pool
  engine.ScoreBatch(targets);  // warm: slabs recycle
  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.pool_acquires, 0u);
  // The zero-allocation hot path carries over to serving: warm forward
  // passes run almost entirely on pool hits.
  EXPECT_GE(stats.PoolHitRate(), 0.45);
}

}  // namespace
}  // namespace bsg

// Gradient correctness of every autograd op, verified against central
// finite differences.
#include <memory>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "graph/csr.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace bsg {
namespace {

using bsg::testing::ExpectGradientsMatch;

Tensor Param(int r, int c, Rng* rng) {
  return MakeTensor(Matrix::RandomNormal(r, c, 0.7, rng), true);
}

TEST(Autograd, MatMulGradient) {
  Rng rng(1);
  Tensor a = Param(3, 4, &rng);
  Tensor b = Param(4, 2, &rng);
  ExpectGradientsMatch({a, b}, [&] {
    return ops::MeanAll(ops::MatMul(a, b));
  });
}

TEST(Autograd, AddSubMulGradient) {
  Rng rng(2);
  Tensor a = Param(3, 3, &rng);
  Tensor b = Param(3, 3, &rng);
  ExpectGradientsMatch({a, b}, [&] {
    Tensor s = ops::Add(ops::Sub(ops::Mul(a, b), a), b);
    return ops::MeanAll(ops::Mul(s, s));
  });
}

TEST(Autograd, AddRowVecGradient) {
  Rng rng(3);
  Tensor a = Param(4, 3, &rng);
  Tensor bias = Param(1, 3, &rng);
  ExpectGradientsMatch({a, bias}, [&] {
    return ops::MeanAll(ops::AddRowVec(a, bias));
  });
}

TEST(Autograd, ScaleGradient) {
  Rng rng(4);
  Tensor a = Param(2, 5, &rng);
  ExpectGradientsMatch({a}, [&] {
    return ops::SumAll(ops::Scale(a, -2.5));
  });
}

TEST(Autograd, ActivationsGradient) {
  Rng rng(5);
  Tensor a = Param(4, 4, &rng);
  ExpectGradientsMatch({a}, [&] {
    Tensor x = ops::LeakyRelu(a, 0.1);
    x = ops::Tanh(x);
    x = ops::Sigmoid(x);
    return ops::MeanAll(x);
  }, 1e-5, 1e-4);
}

TEST(Autograd, ReluIsLeakyWithZeroSlope) {
  Rng rng(6);
  Tensor a = MakeTensor(Matrix::FromRows({{-1.0, 2.0}, {0.5, -3.0}}), true);
  (void)rng;
  Tensor y = ops::Relu(a);
  EXPECT_DOUBLE_EQ(y->value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y->value(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(y->value(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(y->value(1, 1), 0.0);
}

TEST(Autograd, ConcatColsGradient) {
  Rng rng(7);
  Tensor a = Param(3, 2, &rng);
  Tensor b = Param(3, 4, &rng);
  Tensor c = Param(3, 1, &rng);
  ExpectGradientsMatch({a, b, c}, [&] {
    Tensor cc = ops::ConcatCols({a, b, c});
    return ops::MeanAll(ops::Mul(cc, cc));
  });
}

TEST(Autograd, SliceColsGradient) {
  Rng rng(8);
  Tensor a = Param(3, 6, &rng);
  ExpectGradientsMatch({a}, [&] {
    return ops::MeanAll(ops::SliceCols(a, 2, 3));
  });
}

TEST(Autograd, GatherRowsGradient) {
  Rng rng(9);
  Tensor a = Param(5, 3, &rng);
  std::vector<int> idx = {4, 0, 0, 2};  // duplicates exercise accumulation
  ExpectGradientsMatch({a}, [&] {
    Tensor g = ops::GatherRows(a, idx);
    return ops::MeanAll(ops::Mul(g, g));
  });
}

TEST(Autograd, SpMMGradient) {
  Rng rng(10);
  Csr adj = Csr::FromEdgesSymmetric(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
                .Normalized(CsrNorm::kSym);
  SpMat a = MakeSpMat(adj);
  Tensor x = Param(5, 3, &rng);
  ExpectGradientsMatch({x}, [&] {
    Tensor y = ops::SpMM(a, x);
    return ops::MeanAll(ops::Mul(y, y));
  });
}

TEST(Autograd, SegmentSumGradient) {
  Rng rng(11);
  Tensor msgs = Param(6, 2, &rng);
  auto seg = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{0, 2, 2, 5, 6});
  ExpectGradientsMatch({msgs}, [&] {
    Tensor y = ops::SegmentSum(msgs, seg);
    return ops::MeanAll(ops::Mul(y, y));
  });
}

TEST(Autograd, SegmentSoftmaxGradient) {
  Rng rng(12);
  Tensor scores = Param(7, 1, &rng);
  auto seg = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{0, 3, 4, 7});
  ExpectGradientsMatch({scores}, [&] {
    Tensor y = ops::SegmentSoftmax(scores, seg);
    return ops::MeanAll(ops::Mul(y, y));
  }, 1e-5, 1e-4);
}

TEST(Autograd, SegmentSoftmaxSumsToOnePerSegment) {
  Rng rng(13);
  Tensor scores = Param(8, 1, &rng);
  auto seg = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{0, 4, 8});
  Tensor y = ops::SegmentSoftmax(scores, seg);
  double s1 = 0.0, s2 = 0.0;
  for (int i = 0; i < 4; ++i) s1 += y->value(i, 0);
  for (int i = 4; i < 8; ++i) s2 += y->value(i, 0);
  EXPECT_NEAR(s1, 1.0, 1e-12);
  EXPECT_NEAR(s2, 1.0, 1e-12);
}

TEST(Autograd, MulColVecGradient) {
  Rng rng(14);
  Tensor a = Param(4, 3, &rng);
  Tensor s = Param(4, 1, &rng);
  ExpectGradientsMatch({a, s}, [&] {
    Tensor y = ops::MulColVec(a, s);
    return ops::MeanAll(ops::Mul(y, y));
  });
}

TEST(Autograd, SoftmaxRowsGradient) {
  Rng rng(15);
  Tensor a = Param(3, 4, &rng);
  ExpectGradientsMatch({a}, [&] {
    Tensor y = ops::SoftmaxRows(a);
    return ops::MeanAll(ops::Mul(y, y));
  }, 1e-5, 1e-4);
}

TEST(Autograd, ElementAtAndScaleByScalarGradient) {
  Rng rng(16);
  Tensor a = Param(3, 3, &rng);
  Tensor h = Param(2, 2, &rng);
  ExpectGradientsMatch({a, h}, [&] {
    Tensor s = ops::ElementAt(a, 1, 2);
    Tensor y = ops::ScaleByScalar(h, s);
    return ops::MeanAll(ops::Mul(y, y));
  });
}

TEST(Autograd, SoftmaxCrossEntropyGradient) {
  Rng rng(17);
  Tensor logits = Param(5, 2, &rng);
  std::vector<int> labels = {0, 1, 1, 0, 1};
  std::vector<int> mask = {0, 2, 4};
  ExpectGradientsMatch({logits}, [&] {
    return ops::SoftmaxCrossEntropy(logits, labels, mask);
  });
}

TEST(Autograd, CrossEntropyMatchesManualComputation) {
  Tensor logits = MakeTensor(Matrix::FromRows({{2.0, 0.0}, {0.0, 3.0}}), true);
  Tensor loss = ops::SoftmaxCrossEntropy(logits, {0, 1}, {0, 1});
  double l0 = -std::log(std::exp(2.0) / (std::exp(2.0) + 1.0));
  double l1 = -std::log(std::exp(3.0) / (std::exp(3.0) + 1.0));
  EXPECT_NEAR(loss->value(0, 0), (l0 + l1) / 2.0, 1e-12);
}

TEST(Autograd, MaskedRowsGetNoGradient) {
  Tensor logits = MakeTensor(Matrix::FromRows({{1.0, -1.0}, {0.5, 0.5}}), true);
  Tensor loss = ops::SoftmaxCrossEntropy(logits, {0, 1}, {0});
  Backward(loss);
  EXPECT_EQ(logits->grad(1, 0), 0.0);
  EXPECT_EQ(logits->grad(1, 1), 0.0);
  EXPECT_NE(logits->grad(0, 0), 0.0);
}

TEST(Autograd, DropoutEvalIsIdentity) {
  Rng rng(18);
  Tensor a = Param(4, 4, &rng);
  Tensor y = ops::Dropout(a, 0.5, /*training=*/false, &rng);
  EXPECT_EQ(y.get(), a.get());
}

TEST(Autograd, DropoutTrainScalesSurvivors) {
  Rng rng(19);
  Tensor a = MakeTensor(Matrix(50, 50, 1.0), true);
  Tensor y = ops::Dropout(a, 0.5, /*training=*/true, &rng);
  int zeros = 0, scaled = 0;
  for (size_t i = 0; i < y->value.size(); ++i) {
    double v = y->value.data()[i];
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0, 1e-12);
      ++scaled;
    }
  }
  EXPECT_GT(zeros, 800);
  EXPECT_GT(scaled, 800);
}

TEST(Autograd, SharedSubexpressionAccumulatesOnce) {
  // loss = mean(a + a): gradient must be 2/size per entry, not 1/size.
  Tensor a = MakeTensor(Matrix(2, 2, 3.0), true);
  Tensor loss = ops::MeanAll(ops::Add(a, a));
  Backward(loss);
  for (size_t i = 0; i < a->grad.size(); ++i) {
    EXPECT_NEAR(a->grad.data()[i], 2.0 / 4.0, 1e-12);
  }
}

TEST(Autograd, BackwardReinitialisesGradients) {
  Tensor a = MakeTensor(Matrix(2, 2, 1.0), true);
  Tensor loss = ops::MeanAll(a);
  Backward(loss);
  Matrix first = a->grad;
  Backward(loss);  // second run must not double-accumulate
  for (size_t i = 0; i < a->grad.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->grad.data()[i], first.data()[i]);
  }
}

TEST(Autograd, NoGradForConstants) {
  Rng rng(20);
  Tensor c = MakeTensor(Matrix::RandomNormal(3, 3, 1.0, &rng), false);
  Tensor p = Param(3, 3, &rng);
  Tensor loss = ops::MeanAll(ops::MatMul(c, p));
  EXPECT_TRUE(loss->requires_grad);
  Backward(loss);
  EXPECT_NE(p->grad.AbsMax(), 0.0);
  EXPECT_EQ(c->grad.AbsMax(), 0.0);  // skipped by requires_grad guard
}

}  // namespace
}  // namespace bsg

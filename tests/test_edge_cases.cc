// Edge cases and failure injection: boundary inputs, degenerate configs,
// and BSG_CHECK death paths across the substrates.
#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "features/kmeans.h"
#include "features/zscore.h"
#include "graph/csr.h"
#include "graph/homophily.h"
#include "ppr/ppr.h"
#include "tensor/ops.h"
#include "train/metrics.h"

namespace bsg {
namespace {

// ---- CSR boundaries ----

TEST(EdgeCases, SampleNeighborsFanoutAboveDegreeKeepsAll) {
  Csr g = Csr::FromEdgesSymmetric(4, {{0, 1}, {0, 2}});
  Rng rng(1);
  Csr s = g.SampleNeighbors(10, &rng);
  EXPECT_EQ(s.Degree(0), 2);
  EXPECT_EQ(s.num_edges(), g.num_edges());
}

TEST(EdgeCases, InducedSubgraphOfNothingIsEmpty) {
  Csr g = Csr::FromEdgesSymmetric(4, {{0, 1}});
  Csr sub = g.InducedSubgraph({});
  EXPECT_EQ(sub.num_nodes(), 0);
  EXPECT_EQ(sub.num_edges(), 0);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(EdgeCases, BlockDiagonalOfNoGraphsIsEmpty) {
  Csr stacked = Csr::BlockDiagonal({});
  EXPECT_EQ(stacked.num_nodes(), 0);
  EXPECT_TRUE(stacked.Validate().ok());
}

TEST(EdgeCases, TwoHopOfEdgelessGraphIsEdgeless) {
  Csr g = Csr::FromEdges(5, {});
  EXPECT_EQ(g.TwoHop().num_edges(), 0);
}

TEST(EdgeCases, NormalizeNoneGivesUnitWeights) {
  Csr g = Csr::FromEdgesSymmetric(3, {{0, 1}, {1, 2}}).Normalized(
      CsrNorm::kNone);
  for (double w : g.weights()) EXPECT_DOUBLE_EQ(w, 1.0);
}

// ---- PPR boundaries ----

TEST(EdgeCases, PprPushCapRespected) {
  // A big graph with a tiny push budget still terminates and conserves
  // mass below 1.
  Rng rng(2);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < 2000; ++i) {
    edges.emplace_back(i, static_cast<int>(rng.UniformInt(i)));
  }
  Csr g = Csr::FromEdgesSymmetric(2000, edges);
  PprConfig cfg;
  cfg.epsilon = 1e-12;
  cfg.max_pushes = 5;
  SparseVec p = ApproximatePpr(g, 0, cfg);
  double total = 0.0;
  for (const auto& [node, score] : p) total += score;
  EXPECT_LE(total, 1.0 + 1e-12);
}

// ---- K-means boundaries ----

TEST(EdgeCases, KMeansKEqualsNReachesZeroInertia) {
  Rng rng(3);
  Matrix points = Matrix::RandomNormal(8, 3, 1.0, &rng);
  KMeansConfig cfg;
  cfg.k = 8;
  cfg.max_iters = 50;
  KMeansResult res = RunKMeans(points, cfg, &rng);
  EXPECT_NEAR(res.inertia, 0.0, 1e-9);
}

TEST(EdgeCases, KMeansSinglePointPerCluster) {
  Matrix points = Matrix::FromRows({{0.0, 0.0}, {100.0, 100.0}});
  Rng rng(4);
  KMeansConfig cfg;
  cfg.k = 2;
  KMeansResult res = RunKMeans(points, cfg, &rng);
  EXPECT_NE(res.assignment[0], res.assignment[1]);
}

// ---- Generator boundaries ----

TEST(EdgeCases, ZeroBotFractionStillSeedsMinimumBots) {
  // Each community is guaranteed >= 2 of each class so stratified splits
  // and per-community evaluation never divide by zero.
  DatasetConfig cfg;
  cfg.num_users = 200;
  cfg.num_communities = 2;
  cfg.bot_fraction = 0.0;
  cfg.tweets_per_user = 5;
  RawDataset raw = SocialNetworkGenerator(cfg).Generate();
  int bots = 0;
  for (int y : raw.labels) bots += y;
  EXPECT_GE(bots, 4);
  EXPECT_LE(bots, 8);
}

TEST(EdgeCases, ZeroDensityRelationIsSparseButValid) {
  DatasetConfig cfg;
  cfg.num_users = 100;
  cfg.tweets_per_user = 5;
  cfg.relations = {"follower", "ghost"};
  cfg.relation_density = {1.0, 0.0};
  RawDataset raw = SocialNetworkGenerator(cfg).Generate();
  ASSERT_EQ(raw.relations.size(), 2u);
  EXPECT_EQ(raw.relations[1].num_edges(), 0);
  EXPECT_TRUE(raw.relations[1].Validate().ok());
}

// ---- Metric boundaries ----

TEST(EdgeCases, EmptySubsetGivesZeroMetrics) {
  Confusion c = ConfusionOn({1, 0}, {1, 0}, {});
  EXPECT_DOUBLE_EQ(Accuracy(c), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 0.0);
}

TEST(EdgeCases, HomophilyOnEdgelessGraphAllUndefined) {
  Csr g = Csr::FromEdges(3, {});
  std::vector<double> h = NodeHomophily(g, {0, 1, 1});
  for (double v : h) EXPECT_DOUBLE_EQ(v, -1.0);
  EXPECT_DOUBLE_EQ(GraphHomophily(g, {0, 1, 1}), 0.0);
}

// ---- BSG_CHECK death paths (programmer-error contract) ----

using EdgeCasesDeath = ::testing::Test;

TEST(EdgeCasesDeath, MatMulShapeMismatchAborts) {
  Tensor a = MakeConstant(2, 3);
  Tensor b = MakeConstant(2, 3);
  EXPECT_DEATH(ops::MatMul(a, b), "MatMul shape mismatch");
}

TEST(EdgeCasesDeath, ZScoreTransformBeforeFitAborts) {
  ZScoreScaler scaler;
  Matrix m(2, 2, 1.0);
  EXPECT_DEATH(scaler.Transform(m), "column mismatch");
}

TEST(EdgeCasesDeath, GatherOutOfRangeAborts) {
  Matrix m(2, 2, 1.0);
  EXPECT_DEATH(m.GatherRows({5}), "out of range");
}

TEST(EdgeCasesDeath, EdgeEndpointOutOfRangeAborts) {
  EXPECT_DEATH(Csr::FromEdges(2, {{0, 5}}), "endpoint out of range");
}

TEST(EdgeCasesDeath, CrossEntropyEmptyMaskAborts) {
  Tensor logits = MakeConstant(2, 2);
  EXPECT_DEATH(ops::SoftmaxCrossEntropy(logits, {0, 1}, {}), "empty");
}

}  // namespace
}  // namespace bsg

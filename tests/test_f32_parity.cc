// Mixed-precision serving parity: the f32 engine path against the f64
// oracle. Per-logit agreement within the documented tolerance and identical
// argmax over the bench corpus (the test split), on both the 2-relation and
// the 7-relation (semantic-attention) model; shadow refresh semantics across
// checkpoint restore; and f32 single-target scoring.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "io/checkpoint.h"
#include "serve/engine.h"
#include "test_common.h"

namespace bsg {
namespace {

using testing::MultiRelationGraph;
using testing::SmallGraph;

// The documented parity bound (README "Mixed-precision serving"): per logit,
// |f32 - f64| <= kTol * (1 + |f64|).
constexpr double kTol = 5e-3;

Bsg4BotConfig ParityModelConfig(uint64_t seed) {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 8;
  cfg.subgraph.k = 10;
  cfg.hidden = 12;
  cfg.batch_size = 48;
  cfg.max_epochs = 3;
  cfg.min_epochs = 3;
  cfg.seed = seed;
  return cfg;
}

Bsg4Bot& SmallTrainedModel() {
  static Bsg4Bot* model = [] {
    Bsg4Bot* m = new Bsg4Bot(SmallGraph(), ParityModelConfig(21));
    m->Fit();
    return m;
  }();
  return *model;
}

Bsg4Bot& MultiRelationTrainedModel() {
  static Bsg4Bot* model = [] {
    Bsg4Bot* m = new Bsg4Bot(MultiRelationGraph(), ParityModelConfig(33));
    m->Fit();
    return m;
  }();
  return *model;
}

EngineConfig PrecisionConfig(EngineConfig::Precision p) {
  EngineConfig cfg;
  cfg.precision = p;
  return cfg;
}

// Scores `targets` through both precisions and checks the parity contract:
// every logit within kTol relative error, every argmax identical.
void ExpectEngineParity(Bsg4Bot* model, const std::vector<int>& targets) {
  DetectionEngine f64(model, PrecisionConfig(EngineConfig::Precision::kF64));
  DetectionEngine f32(model, PrecisionConfig(EngineConfig::Precision::kF32));
  std::vector<Score> oracle = f64.ScoreBatch(targets);
  std::vector<Score> fast = f32.ScoreBatch(targets);
  ASSERT_EQ(oracle.size(), fast.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(fast[i].target, oracle[i].target);
    EXPECT_LE(std::abs(fast[i].logit_human - oracle[i].logit_human),
              kTol * (1.0 + std::abs(oracle[i].logit_human)))
        << "target " << targets[i];
    EXPECT_LE(std::abs(fast[i].logit_bot - oracle[i].logit_bot),
              kTol * (1.0 + std::abs(oracle[i].logit_bot)))
        << "target " << targets[i];
    // The acceptance bar: no argmax flip anywhere on the corpus.
    EXPECT_EQ(fast[i].label, oracle[i].label) << "target " << targets[i];
    EXPECT_GE(fast[i].bot_prob, 0.0);
    EXPECT_LE(fast[i].bot_prob, 1.0);
  }
}

TEST(F32Parity, EngineLogitsAgreeOnTwoRelationCorpus) {
  ExpectEngineParity(&SmallTrainedModel(), SmallGraph().test_idx);
}

TEST(F32Parity, EngineLogitsAgreeOnSevenRelationSemanticAttentionCorpus) {
  // 7 relations exercise the f32 semantic-attention softmax (Eq. 12-14)
  // across a wide relation fan-in.
  ExpectEngineParity(&MultiRelationTrainedModel(),
                     MultiRelationGraph().test_idx);
}

TEST(F32Parity, SingleTargetScoringAgrees) {
  Bsg4Bot& model = SmallTrainedModel();
  DetectionEngine f64(&model, PrecisionConfig(EngineConfig::Precision::kF64));
  DetectionEngine f32(&model, PrecisionConfig(EngineConfig::Precision::kF32));
  for (int i = 0; i < 8; ++i) {
    const int target = SmallGraph().test_idx[static_cast<size_t>(i)];
    Score a = f64.ScoreOne(target);
    Score b = f32.ScoreOne(target);
    EXPECT_LE(std::abs(b.logit_human - a.logit_human),
              kTol * (1.0 + std::abs(a.logit_human)));
    EXPECT_LE(std::abs(b.logit_bot - a.logit_bot),
              kTol * (1.0 + std::abs(a.logit_bot)));
    EXPECT_EQ(b.label, a.label);
  }
}

TEST(F32Parity, F32EngineDoesNotPerturbTheF64Path) {
  // Scoring through the shadow must leave the f64 answer bit-identical:
  // the shadow is read-only state on the side, not a rewrite of the model.
  Bsg4Bot& model = SmallTrainedModel();
  const std::vector<int>& targets = SmallGraph().test_idx;
  Matrix before = model.PredictLogits(targets);
  DetectionEngine f32(&model, PrecisionConfig(EngineConfig::Precision::kF32));
  f32.ScoreBatch(targets);
  Matrix after = model.PredictLogits(targets);
  EXPECT_TRUE(testing::SameBits(before, after));
}

TEST(F32Parity, CheckpointRestoreRefreshesAnExistingShadow) {
  Bsg4Bot& trained = SmallTrainedModel();
  Checkpoint ckpt;
  trained.ExportCheckpoint(&ckpt);

  // Fresh model, same architecture, different init. Materialise its shadow
  // from the *untrained* weights first, then restore: the restore must
  // refresh the shadow in place, or the engine would keep serving the stale
  // (untrained) f32 weights after a checkpoint reload.
  Bsg4BotConfig cfg = ParityModelConfig(99);
  Bsg4Bot restored(SmallGraph(), cfg);
  ASSERT_TRUE(restored.RestoreFromCheckpoint(ckpt).ok());
  restored.EnsureF32Shadow();
  ASSERT_TRUE(restored.has_f32_shadow());
  ASSERT_TRUE(restored.RestoreFromCheckpoint(ckpt).ok());  // refresh path

  DetectionEngine from_trained(&trained,
                               PrecisionConfig(EngineConfig::Precision::kF32));
  DetectionEngine from_restored(
      &restored, PrecisionConfig(EngineConfig::Precision::kF32));
  const std::vector<int>& targets = SmallGraph().test_idx;
  std::vector<Score> a = from_trained.ScoreBatch(targets);
  std::vector<Score> b = from_restored.ScoreBatch(targets);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Identical weights, identical subgraphs, identical f32 kernels: the
    // restored shadow's logits match the in-process shadow's exactly.
    EXPECT_EQ(b[i].logit_human, a[i].logit_human) << i;
    EXPECT_EQ(b[i].logit_bot, a[i].logit_bot) << i;
  }
}

TEST(F32Parity, ShadowIsLazyAndIdempotent) {
  Bsg4Bot model(SmallGraph(), ParityModelConfig(55));
  model.Fit();
  EXPECT_FALSE(model.has_f32_shadow());
  model.EnsureF32Shadow();
  EXPECT_TRUE(model.has_f32_shadow());
  model.EnsureF32Shadow();  // no-op, still valid
  EXPECT_TRUE(model.has_f32_shadow());
}

}  // namespace
}  // namespace bsg

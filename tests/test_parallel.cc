// Parallel substrate: ParallelFor range coverage, and bit-exact equivalence
// of every parallelised kernel at 1 vs N threads (the determinism contract
// of util/parallel.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/biased_subgraph.h"
#include "features/kmeans.h"
#include "tensor/ops.h"
#include "test_common.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace bsg {
namespace {

using bsg::testing::SameBits;
using bsg::testing::ThreadGuard;

TEST(ParallelFor, CoversExactRangeOnce) {
  ThreadGuard guard;
  for (int threads : {1, 3, 4}) {
    SetNumThreads(threads);
    for (int64_t grain : {1, 3, 7, 100}) {
      std::vector<std::atomic<int>> hits(57);
      for (auto& h : hits) h.store(0);
      ParallelFor(0, 57, grain, [&](int64_t lo, int64_t hi) {
        EXPECT_LE(lo, hi);
        EXPECT_LE(hi - lo, grain);
        for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
      }
    }
  }
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  ThreadGuard guard;
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(9, 2, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainLargerThanRangeIsOneChunk) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(3, 10, 100, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 3);
    EXPECT_EQ(hi, 10);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, UnevenSplitLastChunkIsShort) {
  ThreadGuard guard;
  SetNumThreads(2);
  std::vector<std::pair<int64_t, int64_t>> chunks(4, {-1, -1});
  ParallelFor(0, 10, 3, [&](int64_t lo, int64_t hi) {
    chunks[static_cast<size_t>(lo / 3)] = {lo, hi};
  });
  std::vector<std::pair<int64_t, int64_t>> want = {
      {0, 3}, {3, 6}, {6, 9}, {9, 10}};
  EXPECT_EQ(chunks, want);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::atomic<bool> nested_seen_worker{false};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    // Inside a region: nested loops must not deadlock and must report the
    // region flag on pool workers.
    ParallelFor(0, 4, 1, [&](int64_t, int64_t) {
      if (InParallelRegion()) nested_seen_worker.store(true);
    });
  });
  SUCCEED();  // completion without deadlock is the assertion
  (void)nested_seen_worker;
}

TEST(ParallelFor, BackToBackTinyRegionsStress) {
  // Regression stress for the straggler window: a worker notified for
  // region N can wake after N completed, while region N+1 is being armed.
  // Thousands of tiny consecutive regions maximise that overlap.
  ThreadGuard guard;
  SetNumThreads(4);
  std::atomic<int64_t> total{0};
  int64_t expected = 0;
  for (int r = 0; r < 5000; ++r) {
    int64_t n = 1 + (r % 7);
    expected += n;
    ParallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelFor, ConcurrentOrchestratorsSerializeSafely) {
  // Two plain application threads each launch many regions; the pool's
  // single task slot serializes them, and every region must still cover
  // its own range exactly.
  ThreadGuard guard;
  SetNumThreads(4);
  auto hammer = [](std::atomic<int64_t>* total, int64_t* expected) {
    for (int r = 0; r < 800; ++r) {
      int64_t n = 1 + (r % 11);
      *expected += n;
      ParallelFor(0, n, 2, [&](int64_t lo, int64_t hi) {
        total->fetch_add(hi - lo);
      });
    }
  };
  std::atomic<int64_t> total_a{0}, total_b{0};
  int64_t expected_a = 0, expected_b = 0;
  std::thread ta(hammer, &total_a, &expected_a);
  std::thread tb(hammer, &total_b, &expected_b);
  ta.join();
  tb.join();
  EXPECT_EQ(total_a.load(), expected_a);
  EXPECT_EQ(total_b.load(), expected_b);
}

TEST(ParallelSum, ChunkOrderedReductionIsThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(5);
  std::vector<double> values(10001);
  for (auto& v : values) v = rng.Normal(0.0, 1.0);
  auto chunk_sum = [&](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  SetNumThreads(1);
  double serial = ParallelSum(0, 10001, 64, chunk_sum);
  for (int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    double parallel = ParallelSum(0, 10001, 64, chunk_sum);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(ParallelConfig, SetAndResetThreads) {
  ThreadGuard guard;
  SetNumThreads(4);
  EXPECT_EQ(NumThreads(), 4);
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1);
  EXPECT_FALSE(InParallelRegion());
}

// --- bit-exact 1 vs N equivalence of the wired substrates -----------------

TEST(ParallelEquivalence, MatMulAndTransposed) {
  ThreadGuard guard;
  Rng rng(9);
  // Odd shapes so row chunks split unevenly.
  Matrix a = Matrix::RandomNormal(130, 71, 1.0, &rng);
  Matrix b = Matrix::RandomNormal(71, 93, 1.0, &rng);
  SetNumThreads(1);
  Matrix prod1 = a.MatMul(b);
  Matrix t1 = a.Transposed();
  for (int threads : {2, 4}) {
    SetNumThreads(threads);
    EXPECT_TRUE(SameBits(a.MatMul(b), prod1)) << "threads=" << threads;
    EXPECT_TRUE(SameBits(a.Transposed(), t1)) << "threads=" << threads;
  }
}

TEST(ParallelEquivalence, ColStats) {
  ThreadGuard guard;
  Rng rng(21);
  Matrix m = Matrix::RandomNormal(301, 45, 2.0, &rng);
  SetNumThreads(1);
  std::vector<double> means1 = m.ColMeans();
  std::vector<double> sd1 = m.ColStddevs();
  SetNumThreads(4);
  EXPECT_EQ(m.ColMeans(), means1);
  EXPECT_EQ(m.ColStddevs(), sd1);
}

TEST(ParallelEquivalence, SpMMForwardAndBackward) {
  ThreadGuard guard;
  Rng rng(33);
  const int n = 500;
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int e = 0; e < 6; ++e) {
      edges.emplace_back(u, static_cast<int>(rng.UniformInt(n)));
    }
  }
  SpMat adj =
      MakeSpMat(Csr::FromEdgesSymmetric(n, edges).Normalized(CsrNorm::kSym));
  Matrix x_val = Matrix::RandomNormal(n, 24, 1.0, &rng);

  auto run = [&](int threads) {
    SetNumThreads(threads);
    Tensor x = MakeTensor(x_val, /*requires_grad=*/true);
    Tensor y = ops::SpMM(adj, x);
    Tensor loss = ops::SumAll(ops::Mul(y, y));
    Backward(loss);
    return std::make_pair(y->value, x->grad);
  };
  auto [y1, g1] = run(1);
  for (int threads : {2, 4}) {
    auto [yn, gn] = run(threads);
    EXPECT_TRUE(SameBits(yn, y1)) << "threads=" << threads;
    EXPECT_TRUE(SameBits(gn, g1)) << "threads=" << threads;
  }
}

TEST(ParallelEquivalence, SegmentSumForwardAndBackward) {
  ThreadGuard guard;
  Rng rng(41);
  const int edges = 777, segments = 130;
  auto seg_ptr = std::make_shared<std::vector<int64_t>>();
  seg_ptr->push_back(0);
  for (int s = 1; s < segments; ++s) {
    seg_ptr->push_back(static_cast<int64_t>(rng.UniformInt(edges)));
  }
  seg_ptr->push_back(edges);
  std::sort(seg_ptr->begin(), seg_ptr->end());
  Matrix msgs_val = Matrix::RandomNormal(edges, 12, 1.0, &rng);

  auto run = [&](int threads) {
    SetNumThreads(threads);
    Tensor msgs = MakeTensor(msgs_val, /*requires_grad=*/true);
    Tensor y = ops::SegmentSum(msgs, seg_ptr);
    Backward(ops::SumAll(ops::Mul(y, y)));
    return std::make_pair(y->value, msgs->grad);
  };
  auto [y1, g1] = run(1);
  auto [y4, g4] = run(4);
  EXPECT_TRUE(SameBits(y4, y1));
  EXPECT_TRUE(SameBits(g4, g1));
}

TEST(ParallelEquivalence, BuildAllSubgraphs) {
  ThreadGuard guard;
  const HeteroGraph& g = bsg::testing::SmallGraph();
  Rng rng(55);
  Matrix reps = Matrix::RandomNormal(g.num_nodes, 16, 1.0, &rng);
  BiasedSubgraphConfig cfg;
  cfg.k = 16;

  SetNumThreads(1);
  std::vector<BiasedSubgraph> s1 = BuildAllSubgraphs(g, reps, cfg);
  SetNumThreads(4);
  std::vector<BiasedSubgraph> s4 = BuildAllSubgraphs(g, reps, cfg);

  ASSERT_EQ(s1.size(), s4.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].center, s4[i].center);
    ASSERT_EQ(s1[i].per_relation.size(), s4[i].per_relation.size());
    for (size_t r = 0; r < s1[i].per_relation.size(); ++r) {
      EXPECT_EQ(s1[i].per_relation[r].nodes, s4[i].per_relation[r].nodes);
      EXPECT_EQ(s1[i].per_relation[r].adj.indptr(),
                s4[i].per_relation[r].adj.indptr());
      EXPECT_EQ(s1[i].per_relation[r].adj.indices(),
                s4[i].per_relation[r].adj.indices());
    }
  }
}

TEST(ParallelEquivalence, MatrixReductions) {
  ThreadGuard guard;
  Rng rng(77);
  // Bigger than the 4096-element reduction grain, so several chunks run.
  Matrix big = Matrix::RandomNormal(150, 120, 1.0, &rng);
  // At or below one grain: must reproduce the serial reference loop bit
  // for bit (this path carries the training-time MeanAll/SumAll calls).
  Matrix small = Matrix::RandomNormal(11, 13, 1.0, &rng);
  double small_sum = 0.0, small_sq = 0.0, small_max = 0.0;
  for (size_t i = 0; i < small.size(); ++i) {
    small_sum += small.data()[i];
    small_sq += small.data()[i] * small.data()[i];
    small_max = std::max(small_max, std::fabs(small.data()[i]));
  }

  SetNumThreads(1);
  double sum1 = big.Sum(), fro1 = big.FrobeniusNorm(), max1 = big.AbsMax();
  SetNumThreads(4);
  EXPECT_EQ(big.Sum(), sum1);            // fixed-grain chunk combine: exact
  EXPECT_EQ(big.FrobeniusNorm(), fro1);  // thread-count invariant
  EXPECT_EQ(big.AbsMax(), max1);
  EXPECT_EQ(small.Sum(), small_sum);
  EXPECT_EQ(small.FrobeniusNorm(), std::sqrt(small_sq));
  EXPECT_EQ(small.AbsMax(), small_max);
  // Serial chunked result is sane against a plain serial total.
  double plain = 0.0;
  for (size_t i = 0; i < big.size(); ++i) plain += big.data()[i];
  EXPECT_NEAR(big.Sum(), plain, 1e-9);
}

TEST(ParallelEquivalence, KMeansFullRun) {
  ThreadGuard guard;
  Rng data_rng(66);
  Matrix points = Matrix::RandomNormal(900, 8, 1.0, &data_rng);
  KMeansConfig cfg;
  cfg.k = 7;
  cfg.max_iters = 12;

  SetNumThreads(1);
  Rng rng1(123);
  KMeansResult r1 = RunKMeans(points, cfg, &rng1);
  SetNumThreads(4);
  Rng rng4(123);
  KMeansResult r4 = RunKMeans(points, cfg, &rng4);

  EXPECT_EQ(r1.assignment, r4.assignment);
  EXPECT_EQ(r1.iters_run, r4.iters_run);
  EXPECT_EQ(r1.inertia, r4.inertia);  // chunk-ordered reduction: exact
  EXPECT_TRUE(SameBits(r1.centers, r4.centers));

  std::vector<int> a1 = AssignToCenters(points, r1.centers);
  SetNumThreads(1);
  std::vector<int> a4 = AssignToCenters(points, r1.centers);
  EXPECT_EQ(a1, a4);
}

}  // namespace
}  // namespace bsg

// Unit tests for the ResourceGovernor: account interning and balance,
// budget arming, watermark transitions, reclaim invocation, and the
// `governor.charge` fault site. Uses private governor instances so the
// watermark machinery is driven in isolation from the process-wide
// Global() that the serving singletons (BufferPool, Tracer) charge.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/fault.h"
#include "util/resource_governor.h"

namespace bsg {
namespace {

struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().Disarm(); }
};

TEST(ResourceGovernor, AccountsAreInternedByName) {
  ResourceGovernor gov;
  ResourceGovernor::Account* a = gov.RegisterAccount("cache");
  ResourceGovernor::Account* b = gov.RegisterAccount("cache");
  ResourceGovernor::Account* c = gov.RegisterAccount("pool");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->name(), "cache");
}

TEST(ResourceGovernor, ChargeReleaseBalancesAndTracksPeak) {
  ResourceGovernor gov;
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  ResourceGovernor::Account* b = gov.RegisterAccount("b");
  a->Charge(100);
  b->Charge(50);
  EXPECT_EQ(gov.total_bytes(), 150u);
  a->Release(40);
  EXPECT_EQ(a->resident_bytes(), 60u);
  EXPECT_EQ(gov.total_bytes(), 110u);

  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.peak_total_bytes, 150u);
  ASSERT_EQ(s.accounts.size(), 2u);
  EXPECT_EQ(s.accounts[0].name, "a");
  EXPECT_EQ(s.accounts[0].resident_bytes, 60u);
  EXPECT_EQ(s.accounts[0].peak_bytes, 100u);
  EXPECT_EQ(s.accounts[0].charges, 1u);
  EXPECT_EQ(s.accounts[0].releases, 1u);
  // Zero-byte calls are no-ops, not counter noise.
  a->Charge(0);
  a->Release(0);
  s = gov.Stats();
  EXPECT_EQ(s.accounts[0].charges, 1u);
  EXPECT_EQ(s.accounts[0].releases, 1u);
}

TEST(ResourceGovernor, UnconstrainedTryChargeAlwaysLands) {
  ResourceGovernor gov;
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  // No budget: TryCharge is pure counting, any size lands.
  EXPECT_TRUE(a->TryCharge(1ull << 40));
  EXPECT_EQ(gov.pressure(), PressureLevel::kNone);
  EXPECT_EQ(gov.Stats().refusals, 0u);
}

TEST(ResourceGovernor, TryChargeRefusesAtTheHardWatermark) {
  ResourceGovernor gov;
  gov.SetBudget(1000);  // soft 750, hard 900
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  EXPECT_TRUE(a->TryCharge(500));
  // 500 + 400 >= 900: refused, nothing charged.
  EXPECT_FALSE(a->TryCharge(400));
  EXPECT_EQ(a->resident_bytes(), 500u);
  EXPECT_TRUE(a->TryCharge(300));  // 800 < 900 lands (and crosses soft)
  EXPECT_EQ(gov.pressure(), PressureLevel::kSoft);

  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.refusals, 1u);
  EXPECT_EQ(s.injected_refusals, 0u);
  EXPECT_EQ(s.accounts[0].refusals, 1u);
  EXPECT_TRUE(gov.WouldExceedHard(100));
  EXPECT_FALSE(gov.WouldExceedHard(50));
}

TEST(ResourceGovernor, WatermarkTransitionsAndRecoveriesAreCounted) {
  ResourceGovernor gov;
  gov.SetBudget(1000);
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  a->Charge(700);
  EXPECT_EQ(gov.pressure(), PressureLevel::kNone);
  a->Charge(100);  // 800: crosses soft
  EXPECT_EQ(gov.pressure(), PressureLevel::kSoft);
  a->Charge(150);  // 950: crosses hard (unconditional Charge still lands)
  EXPECT_EQ(gov.pressure(), PressureLevel::kHard);
  a->Release(100);  // 850: back to soft — no recovery yet
  EXPECT_EQ(gov.pressure(), PressureLevel::kSoft);
  a->Release(850);  // 0: recovered
  EXPECT_EQ(gov.pressure(), PressureLevel::kNone);

  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.soft_transitions, 1u);
  EXPECT_EQ(s.hard_transitions, 1u);
  EXPECT_EQ(s.recoveries, 1u);

  // A second full cycle counts again.
  a->Charge(950);
  a->Release(950);
  s = gov.Stats();
  EXPECT_EQ(s.soft_transitions, 2u);
  EXPECT_EQ(s.hard_transitions, 2u);
  EXPECT_EQ(s.recoveries, 2u);
}

TEST(ResourceGovernor, JumpStraightToHardCountsBothTransitions) {
  ResourceGovernor gov;
  gov.SetBudget(1000);
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  a->Charge(950);  // 0 -> 2 in one step
  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.soft_transitions, 1u);
  EXPECT_EQ(s.hard_transitions, 1u);
}

TEST(ResourceGovernor, DisarmingTheBudgetResetsPressureWithoutRecovery) {
  ResourceGovernor gov;
  gov.SetBudget(100);
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  a->Charge(95);
  EXPECT_EQ(gov.pressure(), PressureLevel::kHard);
  gov.SetBudget(0);
  EXPECT_EQ(gov.pressure(), PressureLevel::kNone);
  EXPECT_EQ(gov.Stats().recoveries, 0u);
  // Unarmed again: anything lands.
  EXPECT_TRUE(a->TryCharge(1000));
}

TEST(ResourceGovernor, ArmingBelowTheCurrentFootprintReclaimsImmediately) {
  ResourceGovernor gov;
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  std::atomic<int> calls{0};
  PressureLevel seen = PressureLevel::kNone;
  uint64_t id = gov.RegisterReclaimer([&](PressureLevel level) -> uint64_t {
    calls.fetch_add(1);
    seen = level;
    return 17;
  });
  a->Charge(800);
  EXPECT_EQ(calls.load(), 0);  // unarmed: counting only
  gov.SetBudget(1000);         // 800 >= soft 750: reclaim fires now
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, PressureLevel::kSoft);
  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.reclaim_invocations, 1u);
  EXPECT_EQ(s.reclaimed_bytes, 17u);
  gov.UnregisterReclaimer(id);
  a->Charge(150);  // hard crossing after unregister: no callback left
  EXPECT_EQ(calls.load(), 1);
}

TEST(ResourceGovernor, ReclaimRunsOncePerUpwardTransition) {
  ResourceGovernor gov;
  gov.SetBudget(1000);
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  std::vector<PressureLevel> entered;
  uint64_t id = gov.RegisterReclaimer([&](PressureLevel level) -> uint64_t {
    entered.push_back(level);
    return 0;
  });
  a->Charge(760);  // -> soft
  a->Charge(10);   // still soft: no second call
  a->Charge(10);
  a->Charge(150);  // -> hard
  ASSERT_EQ(entered.size(), 2u);
  EXPECT_EQ(entered[0], PressureLevel::kSoft);
  EXPECT_EQ(entered[1], PressureLevel::kHard);
  // Releases never reclaim, even while still above the watermarks.
  a->Release(10);
  EXPECT_EQ(entered.size(), 2u);
  gov.UnregisterReclaimer(id);
}

TEST(ResourceGovernor, ReclaimerMayReleaseOnTheGovernorWithoutDeadlock) {
  ResourceGovernor gov;
  gov.SetBudget(1000);
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  uint64_t id = gov.RegisterReclaimer([&](PressureLevel) -> uint64_t {
    // A real reclaimer (cache shrink) releases the bytes it frees; the
    // downward delta re-enters EvaluatePressure but never TriggerReclaim.
    uint64_t freed = a->resident_bytes() / 2;
    a->Release(freed);
    return freed;
  });
  a->Charge(800);  // crosses soft; reclaimer halves us to 400
  EXPECT_EQ(a->resident_bytes(), 400u);
  EXPECT_EQ(gov.pressure(), PressureLevel::kNone);
  // Recovery happened *inside* the reclaim pass via the release.
  EXPECT_EQ(gov.Stats().recoveries, 1u);
  gov.UnregisterReclaimer(id);
}

TEST(ResourceGovernor, InjectedFaultRefusesTryChargeDeterministically) {
  FaultGuard guard;
  ResourceGovernor gov;  // no budget at all: only the fault can refuse
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  ASSERT_TRUE(
      FaultInjector::Global().Configure("governor.charge:first=2").ok());
  EXPECT_FALSE(a->TryCharge(10));
  EXPECT_FALSE(a->TryCharge(10));
  EXPECT_TRUE(a->TryCharge(10));  // site exhausted
  EXPECT_EQ(a->resident_bytes(), 10u);
  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.refusals, 2u);
  EXPECT_EQ(s.injected_refusals, 2u);
  EXPECT_EQ(s.accounts[0].refusals, 2u);
}

TEST(ResourceGovernor, ConcurrentChargesBalanceAcrossThreads) {
  ResourceGovernor gov;
  gov.SetBudget(1ull << 40);  // armed but never near the watermarks
  ResourceGovernor::Account* a = gov.RegisterAccount("a");
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([a] {
      for (int i = 0; i < kIters; ++i) {
        a->Charge(64);
        a->Release(64);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(a->resident_bytes(), 0u);
  EXPECT_EQ(gov.total_bytes(), 0u);
  EXPECT_EQ(gov.pressure(), PressureLevel::kNone);
  ResourceGovernorStats s = gov.Stats();
  EXPECT_EQ(s.accounts[0].charges, uint64_t{kThreads} * kIters);
  EXPECT_EQ(s.accounts[0].releases, uint64_t{kThreads} * kIters);
}

TEST(ResourceGovernor, GlobalHasTheServingAccounts) {
  // The serving singletons register on first use; at minimum the interning
  // contract holds for the process-wide instance.
  ResourceGovernor::Account* q =
      ResourceGovernor::Global().RegisterAccount("serve.queue");
  EXPECT_EQ(q, ResourceGovernor::Global().RegisterAccount("serve.queue"));
}

}  // namespace
}  // namespace bsg

// Command-line flag parser.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"

namespace bsg {
namespace {

FlagParser Parse(std::vector<std::string> args,
                 std::set<std::string> boolean_flags = {}) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data(),
                    std::move(boolean_flags));
}

TEST(Flags, EqualsSyntax) {
  FlagParser f = Parse({"--k=32", "--name=bsg"});
  EXPECT_EQ(f.GetInt("k", 0), 32);
  EXPECT_EQ(f.GetString("name", ""), "bsg");
}

TEST(Flags, SpaceSyntax) {
  FlagParser f = Parse({"--k", "16", "--rate", "0.5"});
  EXPECT_EQ(f.GetInt("k", 0), 16);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0), 0.5);
}

TEST(Flags, BareFlagIsBooleanTrue) {
  FlagParser f = Parse({"--verbose"});
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(Flags, ExplicitFalse) {
  FlagParser f = Parse({"--verbose=false", "--debug=0"});
  EXPECT_FALSE(f.GetBool("verbose", true));
  EXPECT_FALSE(f.GetBool("debug", true));
}

TEST(Flags, FallbacksWhenAbsent) {
  FlagParser f = Parse({});
  EXPECT_EQ(f.GetInt("k", 7), 7);
  EXPECT_EQ(f.GetString("s", "dft"), "dft");
  EXPECT_FALSE(f.Has("k"));
}

TEST(Flags, PositionalCollected) {
  FlagParser f = Parse({"input.tsv", "--k=1", "output.tsv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.tsv");
  EXPECT_EQ(f.positional()[1], "output.tsv");
}

TEST(Flags, BareFlagFollowedByFlag) {
  FlagParser f = Parse({"--verbose", "--k=2"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

TEST(Flags, DeclaredBooleanDoesNotSwallowPositional) {
  // The serve_cli bug: `--stats ids.txt` set stats=ids.txt and dropped the
  // file from the positional list.
  FlagParser f = Parse({"--stats", "ids.txt"}, {"stats"});
  EXPECT_TRUE(f.GetBool("stats", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "ids.txt");
}

TEST(Flags, DeclaredBooleanStillTakesBooleanLiterals) {
  FlagParser f = Parse({"--stats", "false", "--train", "1", "ids.txt"},
                       {"stats", "train"});
  EXPECT_FALSE(f.GetBool("stats", true));
  EXPECT_TRUE(f.GetBool("train", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "ids.txt");
}

TEST(Flags, DeclaredBooleanWithEqualsSyntaxUnchanged) {
  FlagParser f = Parse({"--stats=false"}, {"stats"});
  EXPECT_FALSE(f.GetBool("stats", true));
}

TEST(Flags, UndeclaredFlagStillConsumesFollowingValue) {
  // Only declared booleans change behaviour; --ids-file ids.txt keeps the
  // historical space syntax.
  FlagParser f = Parse({"--ids-file", "ids.txt"}, {"stats"});
  EXPECT_EQ(f.GetString("ids-file", ""), "ids.txt");
  EXPECT_TRUE(f.positional().empty());
}

TEST(Flags, StdinDashStaysPositionalAfterDeclaredBoolean) {
  FlagParser f = Parse({"--single", "-"}, {"single"});
  EXPECT_TRUE(f.GetBool("single", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "-");
}

TEST(Flags, StrictIntAcceptsWholeTokenOnly) {
  FlagParser f = Parse({"--workers=8", "--neg=-3"});
  EXPECT_EQ(f.GetInt("workers", 0), 8);
  EXPECT_EQ(f.GetInt("neg", 0), -3);
}

TEST(FlagsDeathTest, GarbageIntegerAbortsNamingTheFlag) {
  FlagParser f = Parse({"--workers=abc"});
  EXPECT_DEATH(f.GetInt("workers", 0), "flag --workers expects an integer");
}

TEST(FlagsDeathTest, TrailingGarbageIntegerAborts) {
  FlagParser f = Parse({"--workers=4x"});
  EXPECT_DEATH(f.GetInt("workers", 0), "flag --workers expects an integer");
}

TEST(FlagsDeathTest, EmptyIntegerValueAborts) {
  FlagParser f = Parse({"--workers="});
  EXPECT_DEATH(f.GetInt("workers", 0), "flag --workers expects an integer");
}

TEST(FlagsDeathTest, OutOfIntRangeAborts) {
  FlagParser f = Parse({"--workers=99999999999999"});
  EXPECT_DEATH(f.GetInt("workers", 0), "flag --workers expects an integer");
}

TEST(FlagsDeathTest, GarbageDoubleAborts) {
  FlagParser f = Parse({"--rate=0.5x"});
  EXPECT_DEATH(f.GetDouble("rate", 0.0), "flag --rate expects a number");
}

TEST(Flags, StrictDoubleAcceptsScientificNotation) {
  FlagParser f = Parse({"--rate=2.5e-3"});
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0), 2.5e-3);
}

}  // namespace
}  // namespace bsg

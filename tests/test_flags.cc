// Command-line flag parser.
#include <gtest/gtest.h>

#include "util/flags.h"

namespace bsg {
namespace {

FlagParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  FlagParser f = Parse({"--k=32", "--name=bsg"});
  EXPECT_EQ(f.GetInt("k", 0), 32);
  EXPECT_EQ(f.GetString("name", ""), "bsg");
}

TEST(Flags, SpaceSyntax) {
  FlagParser f = Parse({"--k", "16", "--rate", "0.5"});
  EXPECT_EQ(f.GetInt("k", 0), 16);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0), 0.5);
}

TEST(Flags, BareFlagIsBooleanTrue) {
  FlagParser f = Parse({"--verbose"});
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(Flags, ExplicitFalse) {
  FlagParser f = Parse({"--verbose=false", "--debug=0"});
  EXPECT_FALSE(f.GetBool("verbose", true));
  EXPECT_FALSE(f.GetBool("debug", true));
}

TEST(Flags, FallbacksWhenAbsent) {
  FlagParser f = Parse({});
  EXPECT_EQ(f.GetInt("k", 7), 7);
  EXPECT_EQ(f.GetString("s", "dft"), "dft");
  EXPECT_FALSE(f.Has("k"));
}

TEST(Flags, PositionalCollected) {
  FlagParser f = Parse({"input.tsv", "--k=1", "output.tsv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.tsv");
  EXPECT_EQ(f.positional()[1], "output.tsv");
}

TEST(Flags, BareFlagFollowedByFlag) {
  FlagParser f = Parse({"--verbose", "--k=2"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace bsg

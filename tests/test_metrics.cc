// Metrics registry: exact counter totals under concurrency, histogram
// bucket-boundary semantics (values on an exact upper bound land in that
// bucket), quantiles validated against a sorted-sample oracle on
// randomized workloads, per-shard merge, provider registration/dedup with
// RAII handles, and the Prometheus/JSON exposition round-trip. The TSan CI
// stage runs this binary, so the sharded relaxed-atomic hot paths are
// exercised under the race detector.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace bsg {
namespace obs {
namespace {

// The registry is global and grows-only (stable instrument pointers), so
// every test uses its own metric names to stay isolated.

TEST(Counter, AddAndValueExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, ConcurrentAddsTotalExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  // Shards make the ordering approximate but the total exact: every
  // increment lands in exactly one shard cell.
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Histogram, BoundsAreLogSpacedAndEndExactlyAtMax) {
  Histogram h;  // defaults: 1e-3 .. 1e4, 8 buckets/decade
  const std::vector<double>& bounds = h.bucket_bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
  // The last finite bound is max_bound EXACTLY (pushed verbatim, not
  // through pow), so the overflow threshold is what the options said.
  EXPECT_EQ(bounds.back(), 1e4);
  // 7 decades at 8 buckets each: bound_0 = min, bound_56 = max.
  EXPECT_EQ(bounds.size(), 57u);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  // Log spacing: consecutive ratios ~ 10^(1/8).
  const double step = std::pow(10.0, 1.0 / 8.0);
  for (size_t i = 1; i + 1 < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], step, 1e-9) << i;
  }
}

TEST(Histogram, BucketIndexBoundaryCases) {
  Histogram h;
  const std::vector<double>& bounds = h.bucket_bounds();
  // Bucket i covers (bounds[i-1], bounds[i]]: a value EXACTLY on an upper
  // bound belongs to that bucket, one ulp above belongs to the next.
  for (size_t i = 0; i < bounds.size(); i += 7) {
    EXPECT_EQ(h.BucketIndex(bounds[i]), i) << bounds[i];
    EXPECT_EQ(h.BucketIndex(
                  std::nextafter(bounds[i],
                                 std::numeric_limits<double>::infinity())),
              i + 1)
        << bounds[i];
  }
  // At or below the first bound (including 0, negatives, NaN): bucket 0.
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(-3.5), 0u);
  EXPECT_EQ(h.BucketIndex(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(h.BucketIndex(1e-9), 0u);
  // Above max_bound: the overflow bucket (index == bounds.size()).
  EXPECT_EQ(h.BucketIndex(1e4 + 1.0), bounds.size());
  EXPECT_EQ(h.BucketIndex(std::numeric_limits<double>::infinity()),
            bounds.size());
}

TEST(Histogram, ObserveCountsAndFixedPointSum) {
  Histogram h;
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(2.0);
  h.Observe(20000.0);  // overflow
  EXPECT_EQ(h.Count(), 4u);
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), h.bucket_bounds().size() + 1);
  EXPECT_EQ(counts[h.BucketIndex(0.5)], 2u);
  EXPECT_EQ(counts[h.BucketIndex(2.0)], 1u);
  EXPECT_EQ(counts.back(), 1u);
  // Fixed point at 1e-6 resolution: this sum is exact.
  EXPECT_DOUBLE_EQ(h.Sum(), 20003.0);
}

TEST(Histogram, ConcurrentObserveTotalCountExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Deterministic per-thread values spread over the full range so
      // several shards and buckets are hit concurrently.
      std::mt19937_64 rng(1234u + static_cast<unsigned>(t));
      std::uniform_real_distribution<double> exp10(-4.0, 5.0);
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(std::pow(10.0, exp10(rng)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every Observe lands in exactly one shard cell of one bucket, so both
  // the total and the per-bucket merge are exact, not approximate.
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<uint64_t> counts = h.BucketCounts();
  uint64_t merged = 0;
  for (uint64_t c : counts) merged += c;
  EXPECT_EQ(merged, h.Count());
}

TEST(Histogram, PerShardMergeMatchesSerialOracle) {
  // Same value observed from many threads: threads map to different
  // shards (round-robin assignment), the merge must still produce one
  // exact per-bucket total.
  Histogram h;
  constexpr int kThreads = 2 * Histogram::kShards;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Observe(3.0);
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<uint64_t> counts = h.BucketCounts();
  EXPECT_EQ(counts[h.BucketIndex(3.0)],
            static_cast<uint64_t>(kThreads) * 1000);
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * 1000);
  EXPECT_NEAR(h.Sum(), kThreads * 1000 * 3.0, 1e-6 * kThreads * 1000);
}

TEST(Histogram, QuantileBracketsSortedSampleOracle) {
  // Randomized workloads: the nearest-rank oracle value from the sorted
  // raw samples must lie in the (lower, upper] bucket interval the
  // histogram reports for the same quantile.
  for (uint64_t seed : {7u, 99u, 2025u}) {
    Histogram h;
    std::mt19937_64 rng(seed);
    // Log-uniform over [1e-4, 1e5): exercises the underflow bucket, the
    // full finite range, and the overflow bucket.
    std::uniform_real_distribution<double> exp10(-4.0, 5.0);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
      double v = std::pow(10.0, exp10(rng));
      samples.push_back(v);
      h.Observe(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const uint64_t rank = static_cast<uint64_t>(
          std::ceil(q * static_cast<double>(samples.size())));
      const double oracle = samples[rank == 0 ? 0 : rank - 1];
      const auto [lower, upper] = h.QuantileBounds(q);
      if (lower == upper) {
        // Degenerate interval == the overflow bucket: the oracle can only
        // be there by exceeding max_bound.
        EXPECT_GT(oracle, upper) << "seed " << seed << " q " << q;
      } else {
        EXPECT_GT(oracle, lower) << "seed " << seed << " q " << q;
        EXPECT_LE(oracle, upper) << "seed " << seed << " q " << q;
      }
      // Quantile() is the conservative (upper-bound) point estimate.
      EXPECT_EQ(h.Quantile(q), upper);
    }
  }
}

TEST(Histogram, QuantileOnEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  auto [lower, upper] = h.QuantileBounds(0.99);
  EXPECT_EQ(lower, 0.0);
  EXPECT_EQ(upper, 0.0);
}

TEST(MetricsRegistry, InternsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.metrics.intern.counter");
  Counter* b = reg.GetCounter("test.metrics.intern.counter");
  EXPECT_EQ(a, b);
  Histogram* ha = reg.GetHistogram("test.metrics.intern.hist");
  Histogram* hb = reg.GetHistogram("test.metrics.intern.hist");
  EXPECT_EQ(ha, hb);
  a->Add(5);
  RegistrySnapshot snap = reg.Snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.metrics.intern.counter") {
      EXPECT_EQ(value, 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, GaugeRegistrationIsRaii) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const size_t before = reg.provider_count();
  {
    GaugeRegistration g(
        reg.RegisterGauge("test.metrics.raii.g", [] { return 7.0; }));
    EXPECT_EQ(reg.provider_count(), before + 1);
    EXPECT_EQ(reg.Snapshot().Gauge("test.metrics.raii.g", -1.0), 7.0);
  }
  // Handle death unregistered the provider; the gauge is gone.
  EXPECT_EQ(reg.provider_count(), before);
  EXPECT_FALSE(reg.Snapshot().HasGauge("test.metrics.raii.g"));
  EXPECT_EQ(reg.Snapshot().Gauge("test.metrics.raii.g", -1.0), -1.0);
}

TEST(MetricsRegistry, DuplicateGaugeNamesKeepLastRegistered) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  GaugeRegistration first(
      reg.RegisterGauge("test.metrics.dup.g", [] { return 1.0; }));
  GaugeRegistration second(
      reg.RegisterGauge("test.metrics.dup.g", [] { return 2.0; }));
  RegistrySnapshot snap = reg.Snapshot();
  size_t occurrences = 0;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name == "test.metrics.dup.g") ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
  EXPECT_EQ(snap.Gauge("test.metrics.dup.g"), 2.0);
}

TEST(MetricsRegistry, ProviderEmitsMultipleSamplesInOneCut) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  int calls = 0;
  GaugeRegistration provider(
      reg.RegisterProvider([&calls](std::vector<GaugeSample>* out) {
        ++calls;
        out->push_back({"test.metrics.provider.a", 1.0});
        out->push_back({"test.metrics.provider.b", 2.0});
      }));
  RegistrySnapshot snap = reg.Snapshot();
  // One provider call per snapshot: the two samples are one coherent cut.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(snap.Gauge("test.metrics.provider.a"), 1.0);
  EXPECT_EQ(snap.Gauge("test.metrics.provider.b"), 2.0);
}

TEST(MetricsRegistry, SnapshotHistogramCarriesQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.metrics.snap.hist");
  for (int i = 0; i < 100; ++i) h->Observe(1.0 + i * 0.01);
  RegistrySnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs = snap.FindHistogram("test.metrics.snap.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 100u);
  EXPECT_EQ(hs->p50, h->Quantile(0.50));
  EXPECT_EQ(hs->p95, h->Quantile(0.95));
  EXPECT_EQ(hs->p99, h->Quantile(0.99));
  uint64_t total = 0;
  for (uint64_t c : hs->buckets) total += c;
  EXPECT_EQ(total, hs->count);
  EXPECT_EQ(snap.FindHistogram("test.metrics.snap.none"), nullptr);
}

TEST(Exposition, PrometheusNameSanitizes) {
  EXPECT_EQ(PrometheusName("serve.frontend.queue_wait_ms"),
            "bsg_serve_frontend_queue_wait_ms");
  EXPECT_EQ(PrometheusName("fault.engine.forward.fires"),
            "bsg_fault_engine_forward_fires");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "bsg_weird_name_with_spaces");
}

TEST(Exposition, PrometheusTextRoundTripsTheSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.export.requests")->Add(3);
  Histogram* h = reg.GetHistogram("test.export.latency_ms");
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(99999.0);  // overflow
  GaugeRegistration g(
      reg.RegisterGauge("test.export.depth", [] { return 4.5; }));
  RegistrySnapshot snap = reg.Snapshot();
  const std::string text = ToPrometheusText(snap);

  EXPECT_NE(text.find("# TYPE bsg_test_export_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("bsg_test_export_requests 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bsg_test_export_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("bsg_test_export_depth 4.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bsg_test_export_latency_ms histogram"),
            std::string::npos);
  // Cumulative buckets: the +Inf bucket equals the total count, and the
  // explicit _count line agrees.
  EXPECT_NE(text.find("bsg_test_export_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("bsg_test_export_latency_ms_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("bsg_test_export_latency_ms_sum"), std::string::npos);

  const std::string json = ToJson(snap, /*include_traces=*/false);
  EXPECT_NE(json.find("\"test.export.requests\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.depth\": 4.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_EQ(json.find("\"traces\""), std::string::npos);
  EXPECT_NE(ToJson(snap, /*include_traces=*/true).find("\"traces\""),
            std::string::npos);
}

TEST(Exposition, PrometheusBucketsAreCumulativeAndOrdered) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.export.cumulative_ms");
  for (int i = 0; i < 50; ++i) h->Observe(0.01 * (i + 1));
  RegistrySnapshot snap = reg.Snapshot();
  const HistogramSnapshot* hs =
      snap.FindHistogram("test.export.cumulative_ms");
  ASSERT_NE(hs, nullptr);
  const std::string text = ToPrometheusText(snap);
  // Re-derive the cumulative series from the snapshot and verify each
  // emitted bucket line carries exactly that cumulative value.
  uint64_t cum = 0;
  for (size_t i = 0; i < hs->bounds.size(); ++i) {
    cum += hs->buckets[i];
    char line[128];
    std::snprintf(line, sizeof(line),
                  "bsg_test_export_cumulative_ms_bucket{le=\"%.9g\"} %llu",
                  hs->bounds[i], static_cast<unsigned long long>(cum));
    EXPECT_NE(text.find(line), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace obs
}  // namespace bsg

// HeteroGraph, homophily metrics, and the partitioner.
#include <gtest/gtest.h>

#include "graph/hetero_graph.h"
#include "graph/homophily.h"
#include "graph/partition.h"

namespace bsg {
namespace {

HeteroGraph TinyGraph() {
  HeteroGraph g;
  g.name = "tiny";
  g.num_nodes = 6;
  g.relation_names = {"follow", "mention"};
  g.relations.push_back(
      Csr::FromEdgesSymmetric(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}}));
  g.relations.push_back(Csr::FromEdgesSymmetric(6, {{0, 3}, {2, 5}}));
  g.features = Matrix(6, 4, 1.0);
  g.labels = {0, 0, 0, 1, 1, 1};
  g.community = {0, 0, 0, 1, 1, 1};
  g.train_idx = {0, 3};
  g.val_idx = {1, 4};
  g.test_idx = {2, 5};
  g.feature_blocks["all"] = FeatureBlock{0, 4};
  return g;
}

TEST(HeteroGraph, ValidatesCleanGraph) {
  EXPECT_TRUE(TinyGraph().Validate().ok());
}

TEST(HeteroGraph, CountsAndTotals) {
  HeteroGraph g = TinyGraph();
  EXPECT_EQ(g.num_relations(), 2);
  EXPECT_EQ(g.NumBots(), 3);
  EXPECT_EQ(g.NumHumans(), 3);
  EXPECT_EQ(g.TotalEdges(), 8 + 4);
}

TEST(HeteroGraph, MergedGraphUnionsRelations) {
  Csr merged = TinyGraph().MergedGraph();
  EXPECT_TRUE(merged.HasEdge(0, 1));  // from follow
  EXPECT_TRUE(merged.HasEdge(0, 3));  // from mention
  EXPECT_TRUE(merged.HasEdge(3, 0));  // symmetric
}

TEST(HeteroGraph, ZeroFeatureBlockKeepsShape) {
  HeteroGraph g = TinyGraph();
  HeteroGraph z = g.WithFeatureBlockZeroed("all");
  EXPECT_EQ(z.features.cols(), g.features.cols());
  EXPECT_DOUBLE_EQ(z.features.AbsMax(), 0.0);
  EXPECT_DOUBLE_EQ(g.features.AbsMax(), 1.0);  // original untouched
}

TEST(HeteroGraph, InducedSubgraphRemapsEverything) {
  HeteroGraph g = TinyGraph();
  HeteroGraph sub = g.InducedSubgraph({0, 1, 3});
  EXPECT_EQ(sub.num_nodes, 3);
  EXPECT_TRUE(sub.Validate().ok());
  EXPECT_EQ(sub.labels, (std::vector<int>{0, 0, 1}));
  EXPECT_TRUE(sub.relations[0].HasEdge(0, 1));   // 0-1 follow edge kept
  EXPECT_TRUE(sub.relations[1].HasEdge(0, 2));   // 0-3 mention edge kept
  // Splits filtered+remapped: train {0,3} -> {0, 2}.
  EXPECT_EQ(sub.train_idx, (std::vector<int>{0, 2}));
  EXPECT_EQ(sub.val_idx, (std::vector<int>{1}));  // node 4 dropped
}

TEST(HeteroGraph, ValidateCatchesBadLabel) {
  HeteroGraph g = TinyGraph();
  g.labels[0] = 7;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(HeteroGraph, ValidateCatchesBadSplit) {
  HeteroGraph g = TinyGraph();
  g.test_idx.push_back(99);
  EXPECT_FALSE(g.Validate().ok());
}

TEST(Homophily, PerNodeValuesMatchHandComputation) {
  // 0-1-2 all label 0; 3-4-5 all label 1; cross edge 2-3.
  Csr g = Csr::FromEdgesSymmetric(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  std::vector<double> h = NodeHomophily(g, labels);
  EXPECT_DOUBLE_EQ(h[0], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 0.5);  // neighbours 1 (same) and 3 (diff)
  EXPECT_DOUBLE_EQ(h[3], 0.5);
  EXPECT_DOUBLE_EQ(h[5], 1.0);
}

TEST(Homophily, IsolatedNodeUndefined) {
  Csr g = Csr::FromEdgesSymmetric(3, {{0, 1}});
  std::vector<double> h = NodeHomophily(g, {0, 0, 1});
  EXPECT_DOUBLE_EQ(h[2], -1.0);
  // Graph homophily skips it.
  EXPECT_DOUBLE_EQ(GraphHomophily(g, {0, 0, 1}), 1.0);
}

TEST(Homophily, ClassHomophilySeparatesClasses) {
  // Bots (label 1) attach only to humans: bot homophily 0, human ~high.
  Csr g = Csr::FromEdgesSymmetric(5, {{0, 1}, {1, 2}, {3, 0}, {4, 2}});
  std::vector<int> labels = {0, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClassHomophily(g, labels, 1), 0.0);
  EXPECT_GT(ClassHomophily(g, labels, 0), 0.5);
}

TEST(Homophily, HistogramAndBuckets) {
  std::vector<double> h = {0.1, 0.3, 0.6, 0.95, 1.0, -1.0};
  std::vector<int> hist = HomophilyHistogram(h, 4);
  EXPECT_EQ(hist[0], 1);  // 0.1
  EXPECT_EQ(hist[1], 1);  // 0.3
  EXPECT_EQ(hist[2], 1);  // 0.6
  EXPECT_EQ(hist[3], 2);  // 0.95, 1.0 (clamped)
  std::vector<int> buckets = HomophilyBuckets(h, 4);
  EXPECT_EQ(buckets[5], -1);
  EXPECT_EQ(buckets[4], 3);
}

TEST(Partition, CoversAllNodesWithinBounds) {
  Rng rng(5);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < 200; ++i) {
    edges.emplace_back(i, static_cast<int>(rng.UniformInt(i)));
  }
  Csr g = Csr::FromEdgesSymmetric(200, edges);
  std::vector<int> part = PartitionGraph(g, 8, &rng);
  for (int p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
  }
  auto groups = GroupByPart(part, 8);
  size_t total = 0;
  for (const auto& grp : groups) {
    total += grp.size();
    EXPECT_LE(grp.size(), 200u / 8 + 8);  // rough balance
  }
  EXPECT_EQ(total, 200u);
}

TEST(Partition, HandlesIsolatedNodes) {
  Csr g = Csr::FromEdgesSymmetric(10, {{0, 1}});  // 8 isolated nodes
  Rng rng(6);
  std::vector<int> part = PartitionGraph(g, 3, &rng);
  auto groups = GroupByPart(part, 3);
  EXPECT_EQ(groups[0].size() + groups[1].size() + groups[2].size(), 10u);
}

TEST(Partition, CutFractionLowOnSeparableGraph) {
  // Two cliques joined by one edge: a 2-partition should cut little.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(10 + i, 10 + j);
    }
  }
  edges.emplace_back(0, 10);
  Csr g = Csr::FromEdgesSymmetric(20, edges);
  Rng rng(7);
  std::vector<int> part = PartitionGraph(g, 2, &rng);
  EXPECT_LT(EdgeCutFraction(g, part), 0.3);
}

TEST(Partition, SinglePartIsTrivial) {
  Csr g = Csr::FromEdgesSymmetric(5, {{0, 1}, {2, 3}});
  Rng rng(8);
  std::vector<int> part = PartitionGraph(g, 1, &rng);
  for (int p : part) EXPECT_EQ(p, 0);
  EXPECT_DOUBLE_EQ(EdgeCutFraction(g, part), 0.0);
}

}  // namespace
}  // namespace bsg

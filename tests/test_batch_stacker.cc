// BatchStacker: the pooled batch-stacking workspace against the
// MakeSubgraphBatch oracle (bitwise-equal stacked CSRs, node ids and centre
// rows), the fused Csr::StackSymNormalizedInto kernel against the unfused
// BlockDiagonal+Normalized pipeline, storage recycling (carcass/CSR/f32
// weight buffers), f32 weight streams as exact casts of the f64 weights,
// and the zero-warm-allocation contract via a counting operator new.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "core/subgraph_batch.h"
#include "graph/csr.h"
#include "test_common.h"
#include "util/alloc_probe.h"  // replaces operator new: exact alloc counts
#include "util/rng.h"

namespace bsg {
namespace {

using testing::SmallGraph;

Bsg4Bot& TrainedModel() {
  static Bsg4Bot* model = [] {
    Bsg4BotConfig cfg;
    cfg.pretrain.epochs = 8;
    cfg.subgraph.k = 10;
    cfg.hidden = 12;
    cfg.batch_size = 32;
    cfg.max_epochs = 2;
    cfg.min_epochs = 2;
    cfg.seed = 13;
    Bsg4Bot* m = new Bsg4Bot(SmallGraph(), cfg);
    m->Fit();
    return m;
  }();
  return *model;
}

// Subgraphs for a slice of the test split, owned by the caller.
std::vector<BiasedSubgraph> BuildSubgraphs(const std::vector<int>& targets) {
  std::vector<BiasedSubgraph> subs;
  subs.reserve(targets.size());
  for (int t : targets) subs.push_back(TrainedModel().AssembleSubgraph(t));
  return subs;
}

std::vector<const BiasedSubgraph*> Pointers(
    const std::vector<BiasedSubgraph>& subs) {
  std::vector<const BiasedSubgraph*> ptrs;
  ptrs.reserve(subs.size());
  for (const BiasedSubgraph& s : subs) ptrs.push_back(&s);
  return ptrs;
}

void ExpectCsrBitEqual(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.indptr(), b.indptr());
  ASSERT_EQ(a.indices(), b.indices());
  ASSERT_EQ(a.weights().size(), b.weights().size());
  // Bitwise, not ==: the normalisation weights must be the same doubles.
  for (size_t i = 0; i < a.weights().size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.weights()[i], &b.weights()[i], sizeof(double)),
              0)
        << "weight " << i;
  }
}

TEST(StackSymNormalizedInto, BitIdenticalToUnfusedPipelineRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Csr> blocks;
    const int num_blocks = 1 + static_cast<int>(rng.UniformInt(6));
    for (int b = 0; b < num_blocks; ++b) {
      const int n = 1 + static_cast<int>(rng.UniformInt(20));
      std::vector<std::pair<int, int>> edges;
      const int m = static_cast<int>(rng.UniformInt(60));
      for (int e = 0; e < m; ++e) {
        edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                           static_cast<int>(rng.UniformInt(n)));
      }
      // Symmetric blocks with occasional pre-existing self loops — the
      // BiasedSubgraph shape.
      blocks.push_back(Csr::FromEdgesSymmetric(n, edges));
    }
    std::vector<const Csr*> ptrs;
    for (const Csr& b : blocks) ptrs.push_back(&b);

    Csr oracle = Csr::BlockDiagonal(ptrs).Normalized(CsrNorm::kSym);
    Csr fused;
    std::vector<double> inv_sqrt_deg;
    Csr::StackSymNormalizedInto(ptrs, &fused, &inv_sqrt_deg);
    ExpectCsrBitEqual(oracle, fused);
    ASSERT_TRUE(fused.Validate().ok());

    // Reuse the same output carcass for a second, different stacking — the
    // pooled path — and it must still match its own oracle exactly.
    std::vector<const Csr*> reversed(ptrs.rbegin(), ptrs.rend());
    Csr oracle2 = Csr::BlockDiagonal(reversed).Normalized(CsrNorm::kSym);
    Csr::StackSymNormalizedInto(reversed, &fused, &inv_sqrt_deg);
    ExpectCsrBitEqual(oracle2, fused);
  }
}

TEST(BatchStacker, StackMatchesMakeSubgraphBatchBitwise) {
  const std::vector<int> targets(SmallGraph().test_idx.begin(),
                                 SmallGraph().test_idx.begin() + 12);
  std::vector<BiasedSubgraph> subs = BuildSubgraphs(targets);
  std::vector<const BiasedSubgraph*> ptrs = Pointers(subs);
  const int R = SmallGraph().num_relations();

  SubgraphBatch oracle = MakeSubgraphBatch(ptrs, targets, R);
  BatchStacker stacker(R);
  SubgraphBatch stacked = stacker.Stack(ptrs, targets);

  EXPECT_EQ(stacked.centers, oracle.centers);
  ASSERT_EQ(stacked.rel_adjs.size(), oracle.rel_adjs.size());
  for (int r = 0; r < R; ++r) {
    EXPECT_EQ(stacked.rel_node_ids[r], oracle.rel_node_ids[r]);
    EXPECT_EQ(stacked.rel_center_rows[r], oracle.rel_center_rows[r]);
    ExpectCsrBitEqual(*oracle.rel_adjs[r].fwd, *stacked.rel_adjs[r].fwd);
    // The stacked adjacency is symmetric, so bwd aliases fwd instead of
    // paying a transpose.
    EXPECT_EQ(stacked.rel_adjs[r].bwd.get(), stacked.rel_adjs[r].fwd.get());
  }
}

TEST(BatchStacker, F32WeightStreamsAreExactCasts) {
  const std::vector<int> targets(SmallGraph().test_idx.begin(),
                                 SmallGraph().test_idx.begin() + 6);
  std::vector<BiasedSubgraph> subs = BuildSubgraphs(targets);
  const int R = SmallGraph().num_relations();

  BatchStacker stacker(R, /*with_f32_weights=*/true);
  SubgraphBatch batch = stacker.Stack(Pointers(subs), targets);
  for (int r = 0; r < R; ++r) {
    const std::vector<float>* w32 = batch.RelWeightsF32(r);
    ASSERT_NE(w32, nullptr);
    const std::vector<double>& w64 = batch.rel_adjs[r].fwd->weights();
    ASSERT_EQ(w32->size(), w64.size());
    for (size_t e = 0; e < w64.size(); ++e) {
      EXPECT_EQ((*w32)[e], static_cast<float>(w64[e])) << "edge " << e;
    }
  }
  // Without f32 weights the accessor reports their absence.
  BatchStacker plain(R);
  SubgraphBatch no_w = plain.Stack(Pointers(subs), targets);
  EXPECT_EQ(no_w.RelWeightsF32(0), nullptr);
}

TEST(BatchStacker, RecyclingReusesCarcassesCsrsAndWeightBuffers) {
  const std::vector<int> targets(SmallGraph().test_idx.begin(),
                                 SmallGraph().test_idx.begin() + 8);
  std::vector<BiasedSubgraph> subs = BuildSubgraphs(targets);
  std::vector<const BiasedSubgraph*> ptrs = Pointers(subs);
  const int R = SmallGraph().num_relations();

  BatchStacker stacker(R, /*with_f32_weights=*/true);
  SubgraphBatch first = stacker.Stack(ptrs, targets);
  BatchStackerStats cold = stacker.Stats();
  EXPECT_EQ(cold.batches_stacked, 1u);
  EXPECT_EQ(cold.carcass_reuses, 0u);
  EXPECT_EQ(cold.csr_reuses, 0u);

  stacker.Recycle(std::move(first));
  SubgraphBatch second = stacker.Stack(ptrs, targets);
  BatchStackerStats warm = stacker.Stats();
  EXPECT_EQ(warm.batches_stacked, 2u);
  EXPECT_EQ(warm.carcass_reuses, 1u);
  EXPECT_EQ(warm.csr_reuses, static_cast<uint64_t>(R));
  EXPECT_EQ(warm.weights_f32_reuses, static_cast<uint64_t>(R));

  // A CSR still referenced outside the batch must NOT be reclaimed into the
  // pool (it would be rebuilt under the reader).
  std::shared_ptr<const Csr> leaked = second.rel_adjs[0].fwd;
  stacker.Recycle(std::move(second));
  SubgraphBatch third = stacker.Stack(ptrs, targets);
  EXPECT_NE(third.rel_adjs[0].fwd.get(), leaked.get());
  ASSERT_TRUE(leaked->Validate().ok());  // untouched by the rebuild
}

TEST(BatchStacker, WarmStackRecycleLoopPerformsZeroAllocations) {
  const std::vector<int> targets(SmallGraph().test_idx.begin(),
                                 SmallGraph().test_idx.begin() + 8);
  std::vector<BiasedSubgraph> subs = BuildSubgraphs(targets);
  std::vector<const BiasedSubgraph*> ptrs = Pointers(subs);
  const int R = SmallGraph().num_relations();

  BatchStacker stacker(R, /*with_f32_weights=*/true);
  // Warm-up: size every carcass vector, CSR array and weight buffer.
  for (int i = 0; i < 3; ++i) {
    stacker.Recycle(stacker.Stack(ptrs, targets));
  }
  const uint64_t before = t_allocs;
  for (int i = 0; i < 10; ++i) {
    stacker.Recycle(stacker.Stack(ptrs, targets));
  }
  const uint64_t allocs = t_allocs - before;
  // The contract the bench reports as allocs/batch ~ 0: warm stacking runs
  // entirely on recycled storage.
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace bsg

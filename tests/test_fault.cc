// Fault-injection framework: spec parsing, deterministic triggers, per-site
// counters, and the injection sites wired through checkpoint IO, the
// subgraph cache's single-flight path, and the serving engine — plus the
// crash-safety behaviours they exist to test (.tmp hygiene, .bak recovery,
// flight failure propagation, deadline classification).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "io/checkpoint.h"
#include "serve/engine.h"
#include "serve/subgraph_cache.h"
#include "test_common.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace bsg {
namespace {

using testing::SmallGraph;

// Every test arms its own spec; the guard guarantees no spec leaks into
// the next test (or into the other suites of this binary).
struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().Disarm(); }
};

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpec, ValidSpecsArm) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  EXPECT_TRUE(inj.Configure("cache.fill:p=0.5").ok());
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.Configure("engine.forward:nth=3,delay_ms=0.5").ok());
  EXPECT_TRUE(
      inj.Configure("ckpt.write.open:every=2,limit=1,fail=0;"
                    "subgraph.build:first=4;")  // trailing ';' tolerated
          .ok());
  EXPECT_TRUE(inj.armed());
}

TEST(FaultSpec, InvalidSpecsRejectAndDisarm) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  const char* bad[] = {
      "",                            // empty: use Disarm()
      "no.such.site:p=0.5",          // unknown site
      "cache.fill",                  // no trigger fields at all
      "cache.fill:limit=3",          // modifier without a trigger
      "cache.fill:p=0.5,nth=2",      // two triggers
      "cache.fill:p=1.5",            // p out of range
      "cache.fill:nth=0",            // zero count
      "cache.fill:frequency=2",      // unknown field
      "cache.fill:p=0.5;cache.fill:nth=1",  // site configured twice
  };
  for (const char* spec : bad) {
    Status st = inj.Configure(spec);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << spec;
    // A rejected spec never leaves the injector half-armed.
    EXPECT_FALSE(inj.armed()) << spec;
  }
}

TEST(FaultSpec, RejectedSpecRollsBackEarlierEntries) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  ASSERT_FALSE(inj.Configure("cache.fill:every=1;bogus.site:p=1").ok());
  // The valid first entry must not survive the failed parse.
  ASSERT_TRUE(inj.Configure("engine.forward:nth=1").ok());
  EXPECT_FALSE(inj.Evaluate(fault::kCacheFill));
  EXPECT_TRUE(inj.Evaluate(fault::kEngineForward));
}

// ---------------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------------

TEST(FaultTrigger, NthEveryFirstAndLimit) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();

  ASSERT_TRUE(inj.Configure("cache.fill:nth=3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj.Evaluate(fault::kCacheFill));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(inj.evaluations(fault::kCacheFill), 6u);
  EXPECT_EQ(inj.fires(fault::kCacheFill), 1u);

  ASSERT_TRUE(inj.Configure("cache.fill:every=2").ok());
  fired.clear();
  for (int i = 0; i < 6; ++i) fired.push_back(inj.Evaluate(fault::kCacheFill));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));

  ASSERT_TRUE(inj.Configure("cache.fill:first=2").ok());
  fired.clear();
  for (int i = 0; i < 5; ++i) fired.push_back(inj.Evaluate(fault::kCacheFill));
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false}));

  // limit caps total fires even when the trigger keeps matching.
  ASSERT_TRUE(inj.Configure("cache.fill:every=1,limit=2").ok());
  fired.clear();
  for (int i = 0; i < 5; ++i) fired.push_back(inj.Evaluate(fault::kCacheFill));
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false}));
  EXPECT_EQ(inj.fires(fault::kCacheFill), 2u);
}

TEST(FaultTrigger, ProbabilityIsDeterministicGivenSeedAndIndex) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  constexpr int kEvals = 2000;

  ASSERT_TRUE(inj.Configure("cache.fill:p=0.25", /*seed=*/7).ok());
  std::vector<bool> run1;
  for (int i = 0; i < kEvals; ++i) run1.push_back(inj.Evaluate(fault::kCacheFill));
  // Same spec + seed -> bit-identical fire pattern.
  ASSERT_TRUE(inj.Configure("cache.fill:p=0.25", /*seed=*/7).ok());
  std::vector<bool> run2;
  for (int i = 0; i < kEvals; ++i) run2.push_back(inj.Evaluate(fault::kCacheFill));
  EXPECT_EQ(run1, run2);

  // The empirical rate lands near p (binomial, generous 5-sigma bound).
  const double rate =
      static_cast<double>(inj.fires(fault::kCacheFill)) / kEvals;
  EXPECT_NEAR(rate, 0.25, 0.05);

  // A different seed yields a different pattern (same rate ballpark).
  ASSERT_TRUE(inj.Configure("cache.fill:p=0.25", /*seed=*/8).ok());
  std::vector<bool> run3;
  for (int i = 0; i < kEvals; ++i) run3.push_back(inj.Evaluate(fault::kCacheFill));
  EXPECT_NE(run1, run3);
}

TEST(FaultTrigger, FailZeroFiresWithoutFailing) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("engine.forward:every=1,fail=0").ok());
  // Fires (counted) but reports no failure — the slowdown-only mode.
  EXPECT_FALSE(inj.Evaluate(fault::kEngineForward));
  EXPECT_EQ(inj.fires(fault::kEngineForward), 1u);
}

TEST(FaultTrigger, DelayMsSleepsOnFire) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("engine.forward:nth=1,delay_ms=30,fail=0").ok());
  WallTimer timer;
  inj.Evaluate(fault::kEngineForward);  // fires: sleeps ~30ms
  const double fired_ms = timer.Millis();
  timer.Restart();
  inj.Evaluate(fault::kEngineForward);  // doesn't fire: no sleep
  const double quiet_ms = timer.Millis();
  EXPECT_GE(fired_ms, 25.0);
  EXPECT_LT(quiet_ms, 25.0);
}

TEST(FaultTrigger, DisarmedMacroNeverFires) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("cache.fill:every=1").ok());
  inj.Disarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(BSG_FAULT(fault::kCacheFill));
  }
  // The macro's fast path short-circuits before Evaluate: no counters move.
  EXPECT_EQ(inj.evaluations(fault::kCacheFill), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint sites + crash safety
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

Checkpoint TinyCheckpoint(double tag) {
  Checkpoint ckpt;
  ckpt.SetMeta("kind", "fault-test");
  ckpt.SetMetaNum("tag", tag);
  Matrix m(2, 3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) m(r, c) = tag + r * 3 + c;
  }
  ckpt.AddTensor("w", std::move(m));
  return ckpt;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void RemoveCheckpointFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove(CheckpointBackupPath(path).c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FaultCheckpoint, WriteFaultsFailSaveAndLeaveNoTmpOrphan) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  const std::string path = TempPath("fault_write.ckpt");
  RemoveCheckpointFiles(path);
  ResetCheckpointIoStats();
  const Checkpoint ckpt = TinyCheckpoint(1.0);

  for (const char* spec :
       {"ckpt.write.open:nth=1", "ckpt.write.short:nth=1",
        "ckpt.write.rename:nth=1"}) {
    ASSERT_TRUE(inj.Configure(spec).ok()) << spec;
    Status st = SaveCheckpoint(ckpt, path);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << spec;
    EXPECT_TRUE(IsRetryable(st.code())) << spec;
    // The crash-safety satellite: a failed save never leaves `.tmp` behind
    // and never clobbers the (absent) primary.
    EXPECT_FALSE(FileExists(path + ".tmp")) << spec;
    EXPECT_FALSE(FileExists(path)) << spec;
  }
  inj.Disarm();
  EXPECT_EQ(GetCheckpointIoStats().save_failures, 3u);
  EXPECT_EQ(GetCheckpointIoStats().saves_ok, 0u);

  // Disarmed, the same save succeeds (the injector caused those failures).
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());
  EXPECT_EQ(GetCheckpointIoStats().saves_ok, 1u);
  RemoveCheckpointFiles(path);
}

TEST(FaultCheckpoint, ReadFaultsFailLoadWhenNoBackupExists) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  const std::string path = TempPath("fault_read.ckpt");
  RemoveCheckpointFiles(path);
  ResetCheckpointIoStats();
  ASSERT_TRUE(SaveCheckpoint(TinyCheckpoint(2.0), path).ok());

  // First save never demotes a primary (there was none), so the read fault
  // has no .bak to fall back to: both read attempts fail.
  ASSERT_TRUE(inj.Configure("ckpt.read.open:first=2").ok());
  Result<Checkpoint> r = LoadCheckpoint(path);
  EXPECT_FALSE(r.ok());
  // The combined error leads with the primary's failure.
  EXPECT_NE(r.status().message().find("backup also unreadable"),
            std::string::npos);

  ASSERT_TRUE(inj.Configure("ckpt.read.corrupt:first=2").ok());
  Result<Checkpoint> c = LoadCheckpoint(path);
  EXPECT_FALSE(c.ok());
  inj.Disarm();
  EXPECT_EQ(GetCheckpointIoStats().load_failures, 2u);

  // The file on disk was never actually harmed (the corrupt site flips a
  // byte of the in-memory blob, not the file).
  EXPECT_TRUE(LoadCheckpoint(path).ok());
  RemoveCheckpointFiles(path);
}

TEST(FaultCheckpoint, LoadRecoversFromBackupWhenPrimaryCorrupts) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  const std::string path = TempPath("fault_bak.ckpt");
  RemoveCheckpointFiles(path);
  ResetCheckpointIoStats();

  // Two successful saves: the first primary (tag 1) is demoted to .bak by
  // the second save (tag 2).
  ASSERT_TRUE(SaveCheckpoint(TinyCheckpoint(1.0), path).ok());
  ASSERT_TRUE(SaveCheckpoint(TinyCheckpoint(2.0), path).ok());
  ASSERT_TRUE(FileExists(CheckpointBackupPath(path)));
  EXPECT_EQ(GetCheckpointIoStats().bak_writes, 1u);

  // Corrupt only the primary's read (nth=1); the .bak read (nth=2) is
  // clean -> the load silently recovers the previous generation.
  ASSERT_TRUE(inj.Configure("ckpt.read.corrupt:nth=1").ok());
  Result<Checkpoint> r = LoadCheckpoint(path);
  inj.Disarm();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(GetCheckpointIoStats().bak_recoveries, 1u);
  EXPECT_EQ(GetCheckpointIoStats().load_failures, 0u);
  // It really is the older generation.
  Result<double> tag = r.ValueOrDie().MetaNum("tag");
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag.ValueOrDie(), 1.0);
  RemoveCheckpointFiles(path);
}

TEST(FaultCheckpoint, BackupRecoveryFuzz) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  const std::string path = TempPath("fault_fuzz.ckpt");
  Rng rng(0xFA11FA11ULL);

  // Random save/load storm with probabilistic write faults. Invariants:
  // a failed save never leaves .tmp, never destroys an existing readable
  // generation (primary or .bak survives), and every load either succeeds
  // or reports a Status — never crashes.
  for (int round = 0; round < 30; ++round) {
    RemoveCheckpointFiles(path);
    ResetCheckpointIoStats();
    const uint64_t seed = rng.NextU64();
    int good_generations = 0;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(inj.Configure(
                         "ckpt.write.open:p=0.25;ckpt.write.short:p=0.25;"
                         "ckpt.write.rename:p=0.25",
                         seed + static_cast<uint64_t>(i))
                      .ok());
      const bool saved =
          SaveCheckpoint(TinyCheckpoint(static_cast<double>(i)), path).ok();
      inj.Disarm();
      if (saved) ++good_generations;
      ASSERT_FALSE(FileExists(path + ".tmp")) << "round " << round;
      if (good_generations > 0) {
        // At least one generation must remain loadable after any failed
        // save (fault-free read path).
        ASSERT_TRUE(LoadCheckpoint(path).ok())
            << "round " << round << " save " << i;
      }
    }
    const CheckpointIoStats stats = GetCheckpointIoStats();
    EXPECT_EQ(stats.saves_ok, static_cast<uint64_t>(good_generations));
    EXPECT_EQ(stats.saves_ok + stats.save_failures, 8u);
  }
  RemoveCheckpointFiles(path);
}

// ---------------------------------------------------------------------------
// Cache + engine sites
// ---------------------------------------------------------------------------

BiasedSubgraph TrivialSubgraph(int target) {
  BiasedSubgraph sub;
  sub.center = target;
  return sub;
}

TEST(FaultCache, FillFaultThrowsStatusErrorAndBalancesStats) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  SubgraphCache cache(8);

  ASSERT_TRUE(inj.Configure("cache.fill:first=2").ok());
  for (int i = 0; i < 2; ++i) {
    try {
      cache.GetOrBuild(5, 0, TrivialSubgraph);
      FAIL() << "expected StatusError";
    } catch (const StatusError& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
      EXPECT_TRUE(IsRetryable(e.status().code()));
    }
  }
  // Third call: trigger exhausted, the build succeeds and fills the cache.
  auto sub = cache.GetOrBuild(5, 0, TrivialSubgraph);
  inj.Disarm();
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->center, 5);

  // Balance: every miss either coalesced, failed its flight, or inserted.
  const SubgraphCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.flight_failures, 2u);
  EXPECT_EQ(stats.misses,
            stats.coalesced_misses + stats.flight_failures + stats.inserts);
}

TEST(FaultCache, WaitersOnFailedFlightsGiveUpAfterMaxAttempts) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  SubgraphCache cache(8);

  // Every fill fails: concurrent callers (builders and waiters alike) must
  // all surface a StatusError within kMaxBuildAttempts — nobody parks
  // forever on a key that can't build.
  ASSERT_TRUE(inj.Configure("cache.fill:every=1").ok());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        cache.GetOrBuild(9, 0, TrivialSubgraph);
      } catch (const StatusError& e) {
        if (e.status().code() == StatusCode::kUnavailable) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  inj.Disarm();
  EXPECT_EQ(errors.load(), kThreads);
  EXPECT_GE(cache.Stats().flight_failures, 1u);
}

Bsg4Bot& FaultTestModel() {
  static Bsg4Bot* model = [] {
    Bsg4BotConfig cfg;
    cfg.pretrain.epochs = 8;
    cfg.subgraph.k = 10;
    cfg.hidden = 12;
    cfg.batch_size = 16;
    cfg.max_epochs = 3;
    cfg.min_epochs = 3;
    cfg.seed = 33;
    Bsg4Bot* m = new Bsg4Bot(SmallGraph(), cfg);
    m->Fit();
    return m;
  }();
  return *model;
}

TEST(FaultEngine, ForwardFaultSurfacesAsUnavailable) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  DetectionEngine engine(&FaultTestModel(), EngineConfig{});
  const std::vector<int>& pool = SmallGraph().test_idx;
  const std::vector<int> targets(pool.begin(), pool.begin() + 8);

  ASSERT_TRUE(inj.Configure("engine.forward:nth=1").ok());
  std::vector<Score> out;
  Status st = engine.TryScoreBatch(targets, ScoreOptions::None(), &out);
  inj.Disarm();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.Stats().score_failures, 1u);

  // Disarmed, the same request succeeds on the same engine — transient
  // faults leave no residue in the scratch/prefetcher machinery.
  st = engine.TryScoreBatch(targets, ScoreOptions::None(), &out);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(out.size(), targets.size());
}

TEST(FaultEngine, SubgraphBuildFaultSurfacesAsUnavailable) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  DetectionEngine engine(&FaultTestModel(), EngineConfig{});
  const std::vector<int>& pool = SmallGraph().test_idx;

  ASSERT_TRUE(inj.Configure("subgraph.build:nth=1").ok());
  Score one;
  Status st = engine.TryScoreOne(pool[0], ScoreOptions::None(), &one);
  inj.Disarm();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);

  // The failed flight didn't poison the key: the rebuild succeeds.
  ASSERT_TRUE(engine.TryScoreOne(pool[0], ScoreOptions::None(), &one).ok());
  EXPECT_EQ(one.target, pool[0]);
}

TEST(FaultEngine, ExpiredDeadlineFailsBeforeScoring) {
  DetectionEngine engine(&FaultTestModel(), EngineConfig{});
  const std::vector<int>& pool = SmallGraph().test_idx;
  const std::vector<int> targets(pool.begin(), pool.begin() + 4);

  const ScoreOptions expired = ScoreOptions::WithDeadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  std::vector<Score> out;
  Status st = engine.TryScoreBatch(targets, expired, &out);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(IsRetryable(st.code()));
  Score one;
  EXPECT_EQ(engine.TryScoreOne(pool[0], expired, &one).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.Stats().deadline_failures, 2u);
  EXPECT_EQ(engine.Stats().targets_scored, 0u);
}

TEST(FaultEngine, DeadlineExpiresBetweenChunks) {
  FaultGuard guard;
  FaultInjector& inj = FaultInjector::Global();
  DetectionEngine engine(&FaultTestModel(), EngineConfig{});
  const std::vector<int>& pool = SmallGraph().test_idx;
  // 3 chunks of 16 with batch_size=16.
  std::vector<int> targets;
  for (int i = 0; i < 48; ++i) {
    targets.push_back(pool[static_cast<size_t>(i) % pool.size()]);
  }

  // Slow every forward pass down by 150ms without failing it; a 225ms
  // deadline survives chunk 1 but must expire before chunk 3. Generous
  // margins: the check only needs "some chunks scored, then kDeadline-
  // Exceeded", not an exact chunk count.
  ASSERT_TRUE(
      inj.Configure("engine.forward:every=1,delay_ms=150,fail=0").ok());
  const ScoreOptions opts = ScoreOptions::WithDeadline(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(225));
  std::vector<Score> out;
  Status st = engine.TryScoreBatch(targets, opts, &out);
  inj.Disarm();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("after chunk"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(engine.Stats().deadline_failures, 1u);

  // The aborted request released its scratch cleanly: a fresh no-deadline
  // run of the same list succeeds.
  ASSERT_TRUE(engine.TryScoreBatch(targets, ScoreOptions::None(), &out).ok());
  ASSERT_EQ(out.size(), targets.size());
}

TEST(FaultEngine, FaultFreeTryPathMatchesThrowingPathBitwise) {
  DetectionEngine engine(&FaultTestModel(), EngineConfig{});
  const std::vector<int>& pool = SmallGraph().test_idx;
  const std::vector<int> targets(pool.begin(), pool.begin() + 24);

  const std::vector<Score> oracle = engine.ScoreBatch(targets);
  std::vector<Score> tried;
  ASSERT_TRUE(engine.TryScoreBatch(targets, ScoreOptions::None(), &tried).ok());
  ASSERT_EQ(tried.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(tried[i].target, oracle[i].target) << i;
    EXPECT_EQ(tried[i].logit_human, oracle[i].logit_human) << i;
    EXPECT_EQ(tried[i].logit_bot, oracle[i].logit_bot) << i;
  }
}

}  // namespace
}  // namespace bsg

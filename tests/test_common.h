// Shared fixtures: a small benchmark graph built once per test binary, plus
// helpers for the determinism suites (bitwise comparison, thread-count
// restoration).
#pragma once

#include <cstring>

#include "datagen/config.h"
#include "features/feature_pipeline.h"
#include "graph/hetero_graph.h"
#include "tensor/matrix.h"
#include "util/parallel.h"

namespace bsg::testing {

/// Restores the default thread resolution when a test scope exits.
struct ThreadGuard {
  ~ThreadGuard() { SetNumThreads(0); }
};

/// Bitwise matrix equality (the determinism contract's notion of "same").
inline bool SameBits(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// A ~500-user, 2-relation benchmark graph (cached across tests).
inline const HeteroGraph& SmallGraph() {
  static const HeteroGraph* graph = [] {
    DatasetConfig cfg = Twibot20Sim();
    cfg.num_users = 500;
    cfg.tweets_per_user = 10;
    return new HeteroGraph(BuildBenchmarkGraph(cfg));
  }();
  return *graph;
}

/// A ~400-user, 7-relation (MGTAB-style) graph.
inline const HeteroGraph& MultiRelationGraph() {
  static const HeteroGraph* graph = [] {
    DatasetConfig cfg = MgtabSim();
    cfg.num_users = 400;
    cfg.tweets_per_user = 8;
    return new HeteroGraph(BuildBenchmarkGraph(cfg));
  }();
  return *graph;
}

}  // namespace bsg::testing

// Shared fixtures: a small benchmark graph built once per test binary.
#pragma once

#include "datagen/config.h"
#include "features/feature_pipeline.h"
#include "graph/hetero_graph.h"

namespace bsg::testing {

/// A ~500-user, 2-relation benchmark graph (cached across tests).
inline const HeteroGraph& SmallGraph() {
  static const HeteroGraph* graph = [] {
    DatasetConfig cfg = Twibot20Sim();
    cfg.num_users = 500;
    cfg.tweets_per_user = 10;
    return new HeteroGraph(BuildBenchmarkGraph(cfg));
  }();
  return *graph;
}

/// A ~400-user, 7-relation (MGTAB-style) graph.
inline const HeteroGraph& MultiRelationGraph() {
  static const HeteroGraph* graph = [] {
    DatasetConfig cfg = MgtabSim();
    cfg.num_users = 400;
    cfg.tweets_per_user = 8;
    return new HeteroGraph(BuildBenchmarkGraph(cfg));
  }();
  return *graph;
}

}  // namespace bsg::testing

// Checkpoint container + Bsg4Bot save/restore: bitwise roundtrip of the
// serving contract (save -> load -> PredictLogits == in-memory logits),
// rejection of corrupted / truncated / mismatched files, and the
// architecture guards.
#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "io/checkpoint.h"
#include "test_common.h"

namespace bsg {
namespace {

using testing::SameBits;
using testing::SmallGraph;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string blob;
  char buf[1 << 14];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) blob.append(buf, got);
  std::fclose(f);
  return blob;
}

void WriteFileBytes(const std::string& path, const std::string& blob) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(blob.data(), 1, blob.size(), f), blob.size());
  std::fclose(f);
}

// --- container ------------------------------------------------------------

TEST(Checkpoint, Crc32KnownVectors) {
  // The classic IEEE test vector.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(Checkpoint, MetaAndTensorRoundtrip) {
  Checkpoint ckpt;
  ckpt.SetMeta("name", "value");
  ckpt.SetMetaNum("pi", 3.141592653589793);
  ckpt.SetMeta("name", "overwritten");
  Rng rng(3);
  Matrix m = Matrix::RandomNormal(7, 5, 1.0, &rng);
  ckpt.AddTensor("weights", m);
  ckpt.AddTensor("empty", Matrix(0, 4));

  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());
  Result<Checkpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Checkpoint& back = loaded.ValueOrDie();

  ASSERT_NE(back.FindMeta("name"), nullptr);
  EXPECT_EQ(*back.FindMeta("name"), "overwritten");
  EXPECT_EQ(back.MetaNum("pi").ValueOrDie(), 3.141592653589793);
  EXPECT_FALSE(back.MetaNum("missing").ok());
  ASSERT_NE(back.FindTensor("weights"), nullptr);
  EXPECT_TRUE(SameBits(*back.FindTensor("weights"), m));
  ASSERT_NE(back.FindTensor("empty"), nullptr);
  EXPECT_EQ(back.FindTensor("empty")->rows(), 0);
  EXPECT_EQ(back.FindTensor("empty")->cols(), 4);
  EXPECT_EQ(back.FindTensor("absent"), nullptr);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagicAndVersion) {
  Checkpoint ckpt;
  ckpt.SetMeta("k", "v");
  const std::string path = TempPath("ckpt_bad_header.bin");
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());
  std::string blob = ReadFileBytes(path);

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  WriteFileBytes(path, bad_magic);
  EXPECT_FALSE(LoadCheckpoint(path).ok());

  std::string bad_version = blob;
  bad_version[8] = static_cast<char>(kCheckpointVersion + 1);
  WriteFileBytes(path, bad_version);
  Result<Checkpoint> r = LoadCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsEveryBitFlipInPayload) {
  Checkpoint ckpt;
  ckpt.SetMeta("key", "value");
  Matrix m(2, 2);
  m(0, 0) = 1.5;
  m(1, 1) = -2.5;
  ckpt.AddTensor("t", m);
  const std::string path = TempPath("ckpt_corrupt.bin");
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());
  const std::string blob = ReadFileBytes(path);

  // Flip one byte at a stride across the whole payload + trailer: the CRC
  // (or the header checks) must catch every one of them.
  const size_t header = 8 + 4 + 8;
  for (size_t pos = header; pos < blob.size(); pos += 3) {
    std::string corrupt = blob;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x41);
    WriteFileBytes(path, corrupt);
    EXPECT_FALSE(LoadCheckpoint(path).ok()) << "flip at byte " << pos;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationFuzzNeverCrashesAlwaysErrors) {
  Checkpoint ckpt;
  ckpt.SetMeta("alpha", "0.15");
  Rng rng(11);
  ckpt.AddTensor("a", Matrix::RandomNormal(9, 3, 1.0, &rng));
  ckpt.AddTensor("b", Matrix::RandomNormal(1, 17, 1.0, &rng));
  const std::string path = TempPath("ckpt_trunc.bin");
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());
  const std::string blob = ReadFileBytes(path);

  for (size_t len = 0; len < blob.size(); ++len) {
    WriteFileBytes(path, blob.substr(0, len));
    EXPECT_FALSE(LoadCheckpoint(path).ok()) << "truncated to " << len;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsHugeDeclaredDimsWithoutAllocating) {
  // A hand-built file with a correct CRC that declares a ~2^54-element
  // tensor backed by zero payload bytes: load must bounds-check the
  // declaration BEFORE allocating a destination, and return a Status.
  auto append_u32 = [](std::string* s, uint32_t v) {
    s->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  std::string payload;
  append_u32(&payload, 0);  // meta_count
  append_u32(&payload, 1);  // tensor_count
  append_u32(&payload, 1);  // name length
  payload += 'x';
  append_u32(&payload, static_cast<uint32_t>(1 << 27));  // rows
  append_u32(&payload, static_cast<uint32_t>(1 << 27));  // cols

  std::string blob("BSG4CKPT", 8);
  append_u32(&blob, kCheckpointVersion);
  const uint64_t payload_size = payload.size();
  blob.append(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
  blob += payload;
  append_u32(&blob, Crc32(payload.data(), payload.size()));

  const std::string path = TempPath("ckpt_huge_dims.bin");
  WriteFileBytes(path, blob);
  Result<Checkpoint> r = LoadCheckpoint(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("tensor data"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsNotFound) {
  Result<Checkpoint> r = LoadCheckpoint(TempPath("ckpt_does_not_exist.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// --- crash safety: the .bak generation -------------------------------------

TEST(Checkpoint, SecondSaveDemotesPreviousGenerationToBackup) {
  const std::string path = TempPath("ckpt_bak_demote.bin");
  std::remove(path.c_str());
  std::remove(CheckpointBackupPath(path).c_str());

  Checkpoint gen1;
  gen1.SetMetaNum("gen", 1.0);
  ASSERT_TRUE(SaveCheckpoint(gen1, path).ok());
  // First save: nothing to demote.
  EXPECT_FALSE(LoadCheckpoint(CheckpointBackupPath(path)).ok());

  Checkpoint gen2;
  gen2.SetMetaNum("gen", 2.0);
  ASSERT_TRUE(SaveCheckpoint(gen2, path).ok());

  // Primary carries the new generation, .bak the previous one.
  Result<Checkpoint> primary = LoadCheckpoint(path);
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ(primary.ValueOrDie().MetaNum("gen").ValueOrDie(), 2.0);
  Result<Checkpoint> backup = LoadCheckpoint(CheckpointBackupPath(path));
  ASSERT_TRUE(backup.ok());
  EXPECT_EQ(backup.ValueOrDie().MetaNum("gen").ValueOrDie(), 1.0);
  std::remove(path.c_str());
  std::remove(CheckpointBackupPath(path).c_str());
}

TEST(Checkpoint, LoadFallsBackToBackupWhenPrimaryIsDamaged) {
  const std::string path = TempPath("ckpt_bak_fallback.bin");
  std::remove(path.c_str());
  std::remove(CheckpointBackupPath(path).c_str());

  Checkpoint gen1;
  gen1.SetMetaNum("gen", 1.0);
  ASSERT_TRUE(SaveCheckpoint(gen1, path).ok());
  Checkpoint gen2;
  gen2.SetMetaNum("gen", 2.0);
  ASSERT_TRUE(SaveCheckpoint(gen2, path).ok());

  // Primary deleted (simulated crash between rename and fsync-to-disk):
  // the load silently serves the previous generation from .bak.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  Result<Checkpoint> recovered = LoadCheckpoint(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.ValueOrDie().MetaNum("gen").ValueOrDie(), 1.0);

  // Primary corrupted in place: same recovery.
  ASSERT_TRUE(SaveCheckpoint(gen2, path).ok());
  std::string blob = ReadFileBytes(path);
  blob[blob.size() / 2] ^= 0x01;
  WriteFileBytes(path, blob);
  recovered = LoadCheckpoint(path);
  ASSERT_TRUE(recovered.ok());
  // The second save demoted the (readable) first primary again.
  EXPECT_EQ(recovered.ValueOrDie().MetaNum("gen").ValueOrDie(), 1.0);

  // Both generations gone: the error names both failures.
  ASSERT_EQ(std::remove(CheckpointBackupPath(path).c_str()), 0);
  Result<Checkpoint> lost = LoadCheckpoint(path);
  ASSERT_FALSE(lost.ok());
  EXPECT_NE(lost.status().message().find("backup also unreadable"),
            std::string::npos);
  std::remove(path.c_str());
}

// --- Bsg4Bot save / restore ------------------------------------------------

Bsg4BotConfig TinyConfig() {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 8;
  cfg.subgraph.k = 10;
  cfg.hidden = 12;
  cfg.batch_size = 64;
  cfg.max_epochs = 3;
  cfg.min_epochs = 3;
  cfg.seed = 5;
  return cfg;
}

// One trained model + checkpoint per binary (training dominates the cost).
struct TrainedFixture {
  Bsg4Bot model;
  std::string path;
  TrainedFixture() : model(SmallGraph(), TinyConfig()) {
    model.Fit();
    path = TempPath("ckpt_bsg4bot.bin");
    Status st = model.SaveCheckpoint(path);
    BSG_CHECK(st.ok(), "fixture save failed");
  }
};

TrainedFixture& Trained() {
  static TrainedFixture* fixture = new TrainedFixture();
  return *fixture;
}

TEST(Bsg4BotCheckpoint, RestoredLogitsAreBitIdentical) {
  TrainedFixture& fx = Trained();
  // A fresh model with a different seed: untrained parameters, no pretrain
  // state — everything must come from the file.
  Bsg4BotConfig cfg = TinyConfig();
  cfg.seed = 999;
  Bsg4Bot restored(SmallGraph(), cfg);
  ASSERT_FALSE(restored.inference_ready());
  Status st = restored.LoadCheckpoint(fx.path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(restored.inference_ready());
  restored.Prepare();  // skips pre-training, rebuilds subgraphs

  const std::vector<int>& targets = SmallGraph().test_idx;
  EXPECT_TRUE(SameBits(restored.PredictLogits(targets),
                       fx.model.PredictLogits(targets)));
}

TEST(Bsg4BotCheckpoint, ConfigRoundTripsThroughMetadata) {
  TrainedFixture& fx = Trained();
  Result<Checkpoint> ckpt = LoadCheckpoint(fx.path);
  ASSERT_TRUE(ckpt.ok());
  Result<Bsg4BotConfig> cfg = Bsg4Bot::CheckpointConfig(ckpt.ValueOrDie());
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg.ValueOrDie().hidden, TinyConfig().hidden);
  EXPECT_EQ(cfg.ValueOrDie().gnn_layers, TinyConfig().gnn_layers);
  EXPECT_EQ(cfg.ValueOrDie().subgraph.k, TinyConfig().subgraph.k);
  EXPECT_EQ(cfg.ValueOrDie().batch_size, TinyConfig().batch_size);
  EXPECT_EQ(cfg.ValueOrDie().seed, TinyConfig().seed);

  // A model constructed from the recovered config restores cleanly.
  Bsg4Bot rebuilt(SmallGraph(), cfg.MoveValueOrDie());
  EXPECT_TRUE(rebuilt.RestoreFromCheckpoint(ckpt.ValueOrDie()).ok());
}

TEST(Bsg4BotCheckpoint, ArchitectureMismatchIsRejected) {
  TrainedFixture& fx = Trained();
  // Wrong hidden width: the constructed network cannot absorb the params.
  Bsg4BotConfig cfg = TinyConfig();
  cfg.hidden = 16;
  Bsg4Bot wrong_width(SmallGraph(), cfg);
  Status st = wrong_width.LoadCheckpoint(fx.path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // A failed restore must leave the model unrestored.
  EXPECT_FALSE(wrong_width.inference_ready());

  // Wrong graph (different node count): pre-classifier state cannot apply.
  Bsg4Bot wrong_graph(testing::MultiRelationGraph(), TinyConfig());
  st = wrong_graph.LoadCheckpoint(fx.path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(Bsg4BotCheckpoint, NonCheckpointFileIsRejected) {
  const std::string path = TempPath("ckpt_not_a_ckpt.bin");
  WriteFileBytes(path, "this is not a checkpoint at all");
  Bsg4Bot model(SmallGraph(), TinyConfig());
  Status st = model.LoadCheckpoint(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bsg

// Async mini-batch pipeline: the double-buffered BatchPrefetcher must hand
// batches out in exact epoch order and drain cleanly on cancellation, and
// the async training path must reproduce the synchronous reference — loss
// history, validation metrics and final logits — bit for bit at 1, 2 and 4
// pool threads.
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bsg4bot.h"
#include "test_common.h"
#include "train/prefetcher.h"
#include "util/parallel.h"

namespace bsg {
namespace {

using bsg::testing::SameBits;
using bsg::testing::ThreadGuard;

// A dummy assembler: batch index is recorded in centers so the consumer can
// verify order. The sleep widens the window in which cancellation/rearming
// races with an in-flight assembly.
BatchPrefetcher::Assembler SlowAssembler(std::atomic<int>* calls,
                                         int sleep_ms = 2) {
  return [calls, sleep_ms](int index) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    calls->fetch_add(1);
    SubgraphBatch batch;
    batch.centers = {index};
    return batch;
  };
}

TEST(BatchPrefetcher, DeliversEpochOrderExactly) {
  std::atomic<int> calls{0};
  BatchPrefetcher prefetcher(SlowAssembler(&calls), /*depth=*/2);
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<int> order = {4, 2, 7, 0, 5, 1, 6, 3};
    prefetcher.StartEpoch(order);
    for (int expected : order) {
      SubgraphBatch batch = prefetcher.Next();
      ASSERT_EQ(batch.centers.size(), 1u);
      EXPECT_EQ(batch.centers[0], expected);
    }
    EXPECT_TRUE(prefetcher.EpochDrained());
  }
}

TEST(BatchPrefetcher, DrainsCleanlyOnEarlyStop) {
  // Consume a prefix of the epoch, then cancel (early stopping). The
  // prefetcher must discard in-flight work without deadlock and be ready
  // for a fresh epoch immediately.
  std::atomic<int> calls{0};
  BatchPrefetcher prefetcher(SlowAssembler(&calls), /*depth=*/2);
  std::vector<int> order(10);
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  prefetcher.StartEpoch(order);
  EXPECT_EQ(prefetcher.Next().centers[0], 0);
  EXPECT_EQ(prefetcher.Next().centers[0], 1);
  EXPECT_FALSE(prefetcher.EpochDrained());
  prefetcher.CancelEpoch();

  // A new epoch after cancellation starts from its own order, unpolluted by
  // the cancelled epoch's leftovers.
  prefetcher.StartEpoch({42, 43});
  EXPECT_EQ(prefetcher.Next().centers[0], 42);
  EXPECT_EQ(prefetcher.Next().centers[0], 43);
  EXPECT_TRUE(prefetcher.EpochDrained());
}

TEST(BatchPrefetcher, DestructionMidEpochIsSafe) {
  // Destroying a prefetcher with unconsumed and in-flight batches must not
  // hang or race (the TSan CI stage runs this test too).
  std::atomic<int> calls{0};
  {
    BatchPrefetcher prefetcher(SlowAssembler(&calls, /*sleep_ms=*/5), 2);
    prefetcher.StartEpoch({0, 1, 2, 3, 4, 5});
    EXPECT_EQ(prefetcher.Next().centers[0], 0);
  }
  SUCCEED();
}

TEST(BatchPrefetcher, BackToBackEpochsStress) {
  // Rapid rearm while the producer may still hold a stale in-flight batch:
  // every epoch must still see exactly its own order.
  std::atomic<int> calls{0};
  BatchPrefetcher prefetcher(SlowAssembler(&calls, /*sleep_ms=*/0), 2);
  for (int epoch = 0; epoch < 200; ++epoch) {
    prefetcher.StartEpoch({epoch, epoch + 1});
    EXPECT_EQ(prefetcher.Next().centers[0], epoch);
    if (epoch % 3 == 0) {
      prefetcher.CancelEpoch();  // drop the second batch
    } else {
      EXPECT_EQ(prefetcher.Next().centers[0], epoch + 1);
    }
  }
}

// --- end-to-end: async pipeline == synchronous oracle, bitwise ------------

// A reduced graph (vs test_common.h's SmallGraph) keeps the 8 full
// Prepare+Fit runs below — and their ThreadSanitizer re-runs in CI —
// affordable.
const HeteroGraph& PipelineGraph() {
  static const HeteroGraph* graph = [] {
    DatasetConfig cfg = Twibot20Sim();
    cfg.num_users = 240;
    cfg.tweets_per_user = 6;
    return new HeteroGraph(BuildBenchmarkGraph(cfg));
  }();
  return *graph;
}

Bsg4BotConfig PipelineConfig(bool async) {
  Bsg4BotConfig cfg;
  cfg.pretrain.epochs = 10;
  cfg.subgraph.k = 12;
  cfg.hidden = 12;
  cfg.batch_size = 48;  // several batches per epoch, so the pipeline runs
  cfg.max_epochs = 4;
  cfg.min_epochs = 1;
  cfg.patience = 8;
  cfg.seed = 77;
  cfg.async_prefetch = async;
  return cfg;
}

struct FitRun {
  TrainResult res;
  Matrix logits;
};

FitRun RunPipeline(bool async, int threads) {
  SetNumThreads(threads);
  Bsg4Bot model(PipelineGraph(), PipelineConfig(async));
  FitRun run;
  run.res = model.Fit();
  run.logits = model.PredictLogits(PipelineGraph().val_idx);
  return run;
}

TEST(AsyncPipeline, BitIdenticalToSynchronousAtEveryThreadCount) {
  ThreadGuard guard;
  FitRun ref = RunPipeline(/*async=*/false, /*threads=*/1);
  ASSERT_GT(ref.res.epochs_run, 0);
  ASSERT_FALSE(ref.res.loss_history.empty());

  for (int threads : {1, 2, 4}) {
    for (bool async : {false, true}) {
      if (!async && threads == 1) continue;  // the reference itself
      FitRun run = RunPipeline(async, threads);
      // Async mode also streams the validation batches through their own
      // prefetcher (sync keeps them cached) — assembly is a pure function
      // of the batch index, so every val metric below must still match the
      // cached oracle exactly. The steps themselves must recycle: most of
      // the run's pooled acquisitions are served warm.
      EXPECT_GE(run.res.pool_hit_rate, 0.8)
          << "async=" << async << " threads=" << threads;
      EXPECT_EQ(run.res.loss_history, ref.res.loss_history)
          << "async=" << async << " threads=" << threads;
      EXPECT_EQ(run.res.epochs_run, ref.res.epochs_run)
          << "async=" << async << " threads=" << threads;
      EXPECT_EQ(run.res.val.f1, ref.res.val.f1)
          << "async=" << async << " threads=" << threads;
      EXPECT_EQ(run.res.val.accuracy, ref.res.val.accuracy)
          << "async=" << async << " threads=" << threads;
      EXPECT_EQ(run.res.test.f1, ref.res.test.f1)
          << "async=" << async << " threads=" << threads;
      EXPECT_TRUE(SameBits(run.res.best_logits, ref.res.best_logits))
          << "async=" << async << " threads=" << threads;
      EXPECT_TRUE(SameBits(run.logits, ref.logits))
          << "async=" << async << " threads=" << threads;
    }
  }
}

TEST(AsyncPipeline, EarlyStoppingDrainsAndMatchesSynchronousStop) {
  // Tight patience forces an early stop; both paths must stop at the same
  // epoch with the same history, and the async path must shut its
  // prefetcher down cleanly (no hang under ctest timeout, no TSan report).
  ThreadGuard guard;
  SetNumThreads(2);
  Bsg4BotConfig cfg = PipelineConfig(false);
  cfg.max_epochs = 30;
  cfg.min_epochs = 1;
  cfg.patience = 1;

  Bsg4Bot sync_model(PipelineGraph(), cfg);
  TrainResult sync_res = sync_model.Fit();

  cfg.async_prefetch = true;
  Bsg4Bot async_model(PipelineGraph(), cfg);
  TrainResult async_res = async_model.Fit();

  EXPECT_LT(sync_res.epochs_run, 30);  // the stop actually triggered early
  EXPECT_EQ(async_res.epochs_run, sync_res.epochs_run);
  EXPECT_EQ(async_res.loss_history, sync_res.loss_history);
  EXPECT_EQ(async_res.val.f1, sync_res.val.f1);
}

TEST(AsyncPipeline, PredictLogitsStreamsBitIdenticallyAtEveryThreadCount) {
  // An async-configured model streams its PredictLogits chunks through a
  // prefetcher (assembly overlaps the forward passes). Chunk assembly is a
  // pure function of the chunk index, so a full-graph sweep must match the
  // synchronous model's bitwise, at any thread count.
  ThreadGuard guard;
  SetNumThreads(1);
  Bsg4Bot sync_model(PipelineGraph(), PipelineConfig(/*async=*/false));
  sync_model.Fit();
  std::vector<int> all_nodes(PipelineGraph().num_nodes);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  ASSERT_GT(all_nodes.size(),
            static_cast<size_t>(PipelineConfig(false).batch_size));
  Matrix oracle = sync_model.PredictLogits(all_nodes);

  Bsg4Bot async_model(PipelineGraph(), PipelineConfig(/*async=*/true));
  async_model.Fit();
  for (int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    EXPECT_TRUE(SameBits(async_model.PredictLogits(all_nodes), oracle))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace bsg

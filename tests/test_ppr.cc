// PPR: forward push vs exact power iteration, plus structural properties.
#include <gtest/gtest.h>

#include "graph/csr.h"
#include "ppr/ppr.h"
#include "util/rng.h"

namespace bsg {
namespace {

Csr RandomConnectedGraph(int n, int extra_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < n; ++i) {
    edges.emplace_back(i, static_cast<int>(rng.UniformInt(i)));  // tree
  }
  for (int e = 0; e < extra_edges; ++e) {
    edges.emplace_back(static_cast<int>(rng.UniformInt(n)),
                       static_cast<int>(rng.UniformInt(n)));
  }
  return Csr::FromEdgesSymmetric(n, edges);
}

TEST(Ppr, MassConservedUpToEpsilon) {
  Csr g = RandomConnectedGraph(50, 100, 1);
  PprConfig cfg;
  cfg.epsilon = 1e-6;
  SparseVec p = ApproximatePpr(g, 0, cfg);
  double total = 0.0;
  for (const auto& [node, score] : p) {
    EXPECT_GT(score, 0.0);
    total += score;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.9);  // eps small => nearly all mass settled
}

TEST(Ppr, SourceRetainsAtLeastTeleportMass) {
  // Note the source is NOT always the argmax (a hub adjacent to the source
  // can absorb more mass), but it always settles at least ~alpha: the very
  // first push banks alpha * r(source).
  Csr g = RandomConnectedGraph(40, 60, 2);
  PprConfig cfg;
  cfg.epsilon = 1e-7;
  SparseVec p = ApproximatePpr(g, 5, cfg);
  double src = 0.0;
  for (const auto& [node, score] : p) {
    if (node == 5) src = score;
  }
  EXPECT_GE(src, cfg.alpha * 0.999);
}

TEST(Ppr, ApproximateMatchesExactOnSmallGraph) {
  Csr g = Csr::FromEdgesSymmetric(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
  PprConfig cfg;
  cfg.epsilon = 1e-9;
  SparseVec approx = ApproximatePpr(g, 0, cfg);
  std::vector<double> exact = ExactPpr(g, 0, cfg.alpha, 300);
  std::vector<double> dense(6, 0.0);
  for (const auto& [node, score] : approx) dense[node] = score;
  for (int u = 0; u < 6; ++u) EXPECT_NEAR(dense[u], exact[u], 1e-5);
}

TEST(Ppr, ExactSumsToOne) {
  Csr g = RandomConnectedGraph(25, 30, 3);
  std::vector<double> pi = ExactPpr(g, 3, 0.2, 200);
  double total = 0.0;
  for (double v : pi) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Ppr, DanglingNodesHandled) {
  // Directed: node 2 has no out-edges.
  Csr g = Csr::FromEdges(3, {{0, 1}, {1, 2}});
  SparseVec p = ApproximatePpr(g, 0, PprConfig{});
  double total = 0.0;
  for (const auto& [node, score] : p) total += score;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.0);
}

TEST(Ppr, IsolatedSourceKeepsAllMass) {
  Csr g = Csr::FromEdgesSymmetric(4, {{1, 2}});  // node 0 isolated
  SparseVec p = ApproximatePpr(g, 0, PprConfig{});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, 0);
  EXPECT_NEAR(p[0].second, 1.0, 1e-12);
}

TEST(Ppr, HigherAlphaConcentratesAtSource) {
  Csr g = RandomConnectedGraph(40, 80, 4);
  PprConfig low, high;
  low.alpha = 0.1;
  high.alpha = 0.5;
  low.epsilon = high.epsilon = 1e-7;
  auto get_src = [&](const PprConfig& cfg) {
    for (const auto& [node, score] : ApproximatePpr(g, 7, cfg)) {
      if (node == 7) return score;
    }
    return 0.0;
  };
  EXPECT_GT(get_src(high), get_src(low));
}

TEST(Ppr, LocalityCloseNodesOutscoreFarNodes) {
  // Long path: score decays with distance from the source.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < 30; ++i) edges.emplace_back(i, i + 1);
  Csr g = Csr::FromEdgesSymmetric(30, edges);
  PprConfig cfg;
  cfg.epsilon = 1e-8;
  SparseVec p = ApproximatePpr(g, 0, cfg);
  std::vector<double> dense(30, 0.0);
  for (const auto& [node, score] : p) dense[node] = score;
  EXPECT_GT(dense[1], dense[5]);
  EXPECT_GT(dense[5], dense[15]);
}

TEST(Ppr, TopKOrdersByScoreAndExcludes) {
  SparseVec v = {{0, 0.5}, {1, 0.1}, {2, 0.3}, {3, 0.1}};
  SparseVec top = TopK(v, 2, /*exclude=*/0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 1);  // tie with 3 broken by id
}

TEST(Ppr, TopKShorterThanK) {
  SparseVec v = {{4, 0.2}};
  SparseVec top = TopK(v, 10);
  ASSERT_EQ(top.size(), 1u);
}

// Property: approximation error bound per node, eps * deg(u).
class PprAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(PprAccuracy, ResidualBoundHolds) {
  double eps = GetParam();
  Csr g = RandomConnectedGraph(60, 120, 9);
  PprConfig cfg;
  cfg.epsilon = eps;
  SparseVec approx = ApproximatePpr(g, 11, cfg);
  std::vector<double> exact = ExactPpr(g, 11, cfg.alpha, 400);
  std::vector<double> dense(60, 0.0);
  for (const auto& [node, score] : approx) dense[node] = score;
  for (int u = 0; u < 60; ++u) {
    // Forward-push guarantee: p[u] underestimates pi[u] by at most
    // eps * deg(u) mass routed through u (loose but indicative bound).
    EXPECT_LE(dense[u], exact[u] + 1e-9);
    EXPECT_GE(dense[u], exact[u] - 10.0 * eps * std::max(1, g.Degree(u)));
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, PprAccuracy,
                         ::testing::Values(1e-3, 1e-4, 1e-5, 1e-6));

}  // namespace
}  // namespace bsg

// Parameterised property tests over the tensor ops: algebraic identities
// that must hold for random shapes and seeds.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "graph/csr.h"
#include "tensor/ops.h"
#include "test_common.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace bsg {
namespace {

class OpsProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  ~OpsProperty() override { SetNumThreads(0); }
  Rng rng_{GetParam()};
};

using bsg::testing::SameBits;

// Random segment partition of [0, edges) with a sprinkling of empty
// segments (repeated boundaries).
std::shared_ptr<std::vector<int64_t>> RandomSegments(Rng* rng, int edges,
                                                     int segments) {
  auto seg_ptr = std::make_shared<std::vector<int64_t>>();
  seg_ptr->push_back(0);
  for (int s = 1; s < segments; ++s) {
    // ~1 in 4 boundaries duplicates an existing one => empty segment.
    seg_ptr->push_back(rng->Bernoulli(0.25) && seg_ptr->size() > 1
                           ? seg_ptr->back()
                           : static_cast<int64_t>(rng->UniformInt(edges + 1)));
  }
  seg_ptr->push_back(edges);
  std::sort(seg_ptr->begin(), seg_ptr->end());
  return seg_ptr;
}

TEST_P(OpsProperty, SpMMMatchesDenseMatMul) {
  const int n = 12 + static_cast<int>(rng_.UniformInt(10));
  const int d = 3 + static_cast<int>(rng_.UniformInt(6));
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < 4 * n; ++e) {
    edges.emplace_back(static_cast<int>(rng_.UniformInt(n)),
                       static_cast<int>(rng_.UniformInt(n)));
  }
  Csr adj = Csr::FromEdgesSymmetric(n, edges).Normalized(CsrNorm::kSym);
  // Densify the adjacency.
  Matrix dense(n, n);
  for (int u = 0; u < n; ++u) {
    const int* nb = adj.NeighborsBegin(u);
    const double* w = adj.WeightsBegin(u);
    for (int e = 0; e < adj.Degree(u); ++e) dense(u, nb[e]) = w[e];
  }
  Tensor x = MakeTensor(Matrix::RandomNormal(n, d, 1.0, &rng_));
  Tensor sparse_out = ops::SpMM(MakeSpMat(adj), x);
  Matrix dense_out = dense.MatMul(x->value);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < d; ++c) {
      EXPECT_NEAR(sparse_out->value(i, c), dense_out(i, c), 1e-10);
    }
  }
}

TEST_P(OpsProperty, ConcatThenSliceIsIdentity) {
  const int n = 4 + static_cast<int>(rng_.UniformInt(5));
  Tensor a = MakeTensor(Matrix::RandomNormal(n, 3, 1.0, &rng_));
  Tensor b = MakeTensor(Matrix::RandomNormal(n, 5, 1.0, &rng_));
  Tensor cc = ops::ConcatCols({a, b});
  Tensor a2 = ops::SliceCols(cc, 0, 3);
  Tensor b2 = ops::SliceCols(cc, 3, 5);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(a2->value(i, c), a->value(i, c));
    }
    for (int c = 0; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(b2->value(i, c), b->value(i, c));
    }
  }
}

TEST_P(OpsProperty, GatherSegmentSumAdjoint) {
  // <Gather(x), y> == <x, SegmentScatter(y)>: verified via autograd — the
  // gradient of sum(Gather(x) * y) wrt x must equal the scatter of y.
  const int n = 6 + static_cast<int>(rng_.UniformInt(4));
  const int m = 10 + static_cast<int>(rng_.UniformInt(6));
  std::vector<int> idx(m);
  for (int i = 0; i < m; ++i) idx[i] = static_cast<int>(rng_.UniformInt(n));
  Tensor x = MakeTensor(Matrix::RandomNormal(n, 2, 1.0, &rng_), true);
  Matrix y = Matrix::RandomNormal(m, 2, 1.0, &rng_);
  Tensor loss = ops::SumAll(ops::Mul(ops::GatherRows(x, idx), MakeTensor(y)));
  Backward(loss);
  Matrix expect(n, 2);
  for (int i = 0; i < m; ++i) {
    expect(idx[i], 0) += y(i, 0);
    expect(idx[i], 1) += y(i, 1);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x->grad(i, 0), expect(i, 0), 1e-12);
    EXPECT_NEAR(x->grad(i, 1), expect(i, 1), 1e-12);
  }
}

TEST_P(OpsProperty, SoftmaxRowsIsDistribution) {
  const int n = 3 + static_cast<int>(rng_.UniformInt(5));
  const int c = 2 + static_cast<int>(rng_.UniformInt(6));
  Tensor a = MakeTensor(Matrix::RandomNormal(n, c, 3.0, &rng_));
  Tensor y = ops::SoftmaxRows(a);
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    for (int j = 0; j < c; ++j) {
      EXPECT_GE(y->value(i, j), 0.0);
      total += y->value(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST_P(OpsProperty, SoftmaxRowsShiftInvariant) {
  const int c = 4;
  Tensor a = MakeTensor(Matrix::RandomNormal(3, c, 1.0, &rng_));
  Matrix shifted = a->value;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < c; ++j) shifted(i, j) += 100.0;
  }
  Tensor y1 = ops::SoftmaxRows(a);
  Tensor y2 = ops::SoftmaxRows(MakeTensor(shifted));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < c; ++j) {
      EXPECT_NEAR(y1->value(i, j), y2->value(i, j), 1e-12);
    }
  }
}

TEST_P(OpsProperty, ScaleComposesWithScalars) {
  Tensor a = MakeTensor(Matrix::RandomNormal(4, 4, 1.0, &rng_));
  Tensor s = MakeTensor(Matrix::FromRows({{2.5}}));
  Tensor via_scalar = ops::ScaleByScalar(a, s);
  Tensor via_const = ops::Scale(a, 2.5);
  for (size_t i = 0; i < a->value.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_scalar->value.data()[i], via_const->value.data()[i]);
  }
}

TEST_P(OpsProperty, CrossEntropyNonNegativeAndCalibrated) {
  const int n = 8;
  Tensor logits = MakeTensor(Matrix::RandomNormal(n, 2, 1.5, &rng_), true);
  std::vector<int> labels(n);
  std::vector<int> mask(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng_.UniformInt(2));
    mask[i] = i;
  }
  Tensor loss = ops::SoftmaxCrossEntropy(logits, labels, mask);
  EXPECT_GE(loss->value(0, 0), 0.0);
  // Perfectly confident correct logits drive the loss to ~0.
  Matrix perfect(n, 2);
  for (int i = 0; i < n; ++i) perfect(i, labels[i]) = 50.0;
  Tensor zero_loss =
      ops::SoftmaxCrossEntropy(MakeTensor(perfect), labels, mask);
  EXPECT_NEAR(zero_loss->value(0, 0), 0.0, 1e-9);
}

TEST_P(OpsProperty, MeanAllMatchesSumAll) {
  const int n = 3 + static_cast<int>(rng_.UniformInt(4));
  const int c = 2 + static_cast<int>(rng_.UniformInt(4));
  Tensor a = MakeTensor(Matrix::RandomNormal(n, c, 1.0, &rng_));
  EXPECT_NEAR(ops::MeanAll(a)->value(0, 0) * n * c,
              ops::SumAll(a)->value(0, 0), 1e-9);
}

TEST_P(OpsProperty, SegmentSoftmaxSegmentsSumToOne) {
  // Parallelised over segments: every non-empty segment must still form a
  // probability distribution, at any thread count. Sizes exceed the segment
  // grain (64) so several chunks really run.
  const int edges = 500 + static_cast<int>(rng_.UniformInt(200));
  const int segments = 150 + static_cast<int>(rng_.UniformInt(50));
  auto seg_ptr = RandomSegments(&rng_, edges, segments);
  Tensor scores = MakeTensor(Matrix::RandomNormal(edges, 1, 2.0, &rng_));
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    Tensor y = ops::SegmentSoftmax(scores, seg_ptr);
    for (size_t s = 0; s + 1 < seg_ptr->size(); ++s) {
      int64_t lo = (*seg_ptr)[s], hi = (*seg_ptr)[s + 1];
      if (lo == hi) continue;
      double total = 0.0;
      for (int64_t e = lo; e < hi; ++e) {
        EXPECT_GE(y->value(static_cast<int>(e), 0), 0.0);
        total += y->value(static_cast<int>(e), 0);
      }
      EXPECT_NEAR(total, 1.0, 1e-12) << "segment " << s;
    }
  }
}

TEST_P(OpsProperty, SegmentSoftmaxShiftInvariantPerSegment) {
  const int edges = 300;
  auto seg_ptr = RandomSegments(&rng_, edges, 90);
  Matrix base = Matrix::RandomNormal(edges, 1, 1.0, &rng_);
  // Shift each segment by its own constant: softmax must not move.
  Matrix shifted = base;
  for (size_t s = 0; s + 1 < seg_ptr->size(); ++s) {
    double shift = rng_.Uniform(-50.0, 50.0);
    for (int64_t e = (*seg_ptr)[s]; e < (*seg_ptr)[s + 1]; ++e) {
      shifted(static_cast<int>(e), 0) += shift;
    }
  }
  SetNumThreads(4);
  Tensor y1 = ops::SegmentSoftmax(MakeTensor(base), seg_ptr);
  Tensor y2 = ops::SegmentSoftmax(MakeTensor(shifted), seg_ptr);
  for (int e = 0; e < edges; ++e) {
    EXPECT_NEAR(y1->value(e, 0), y2->value(e, 0), 1e-12);
  }
}

TEST_P(OpsProperty, SegmentSoftmaxEmptySegmentsAndThreadInvariance) {
  // All-empty interior segments plus a bitwise 1-vs-4-thread check of the
  // forward value and the backward gradient.
  const int edges = 400;
  auto seg_ptr = RandomSegments(&rng_, edges, 130);
  Matrix scores_val = Matrix::RandomNormal(edges, 1, 1.5, &rng_);
  auto run = [&](int threads) {
    SetNumThreads(threads);
    Tensor scores = MakeTensor(scores_val, /*requires_grad=*/true);
    Tensor y = ops::SegmentSoftmax(scores, seg_ptr);
    Backward(ops::SumAll(ops::Mul(y, y)));
    return std::make_pair(y->value, scores->grad);
  };
  auto [y1, g1] = run(1);
  auto [y4, g4] = run(4);
  EXPECT_TRUE(SameBits(y1, y4));
  EXPECT_TRUE(SameBits(g1, g4));

  // A degenerate all-empty-except-one partition must not crash or write
  // outside the single live segment.
  auto degenerate = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{0, 0, 0, edges, edges});
  Tensor y = ops::SegmentSoftmax(MakeTensor(scores_val), degenerate);
  double total = 0.0;
  for (int e = 0; e < edges; ++e) total += y->value(e, 0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(OpsProperty, SoftmaxRowsParallelRowsSumToOne) {
  // Taller than the row grain (64) so the parallel path really splits.
  const int n = 200 + static_cast<int>(rng_.UniformInt(100));
  const int c = 2 + static_cast<int>(rng_.UniformInt(6));
  Tensor a = MakeTensor(Matrix::RandomNormal(n, c, 3.0, &rng_));
  SetNumThreads(4);
  Tensor y = ops::SoftmaxRows(a);
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    for (int j = 0; j < c; ++j) {
      EXPECT_GE(y->value(i, j), 0.0);
      total += y->value(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST_P(OpsProperty, SoftmaxRowsParallelShiftInvariantAndThreadInvariant) {
  const int n = 190;
  const int c = 5;
  Matrix base = Matrix::RandomNormal(n, c, 1.0, &rng_);
  Matrix shifted = base;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < c; ++j) shifted(i, j) += 1000.0;
  }
  auto run = [&](const Matrix& m, int threads) {
    SetNumThreads(threads);
    Tensor a = MakeTensor(m, /*requires_grad=*/true);
    Tensor y = ops::SoftmaxRows(a);
    Backward(ops::SumAll(ops::Mul(y, y)));
    return std::make_pair(y->value, a->grad);
  };
  auto [y1, g1] = run(base, 1);
  auto [y4, g4] = run(base, 4);
  EXPECT_TRUE(SameBits(y1, y4));  // forward bit-identical across threads
  EXPECT_TRUE(SameBits(g1, g4));  // backward too
  auto [ys, gs] = run(shifted, 4);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < c; ++j) {
      // The softmax value and its backward depend only on the normalised
      // distribution, so both are invariant to the constant shift.
      EXPECT_NEAR(y4(i, j), ys(i, j), 1e-12) << i << "," << j;
      EXPECT_NEAR(g4(i, j), gs(i, j), 1e-9) << i << "," << j;
    }
  }
}

// ---- Fused kernels: must match their unfused compositions bit for bit ----

TEST_P(OpsProperty, FusedLinearMatchesUnfusedBitwise) {
  const int n = 5 + static_cast<int>(rng_.UniformInt(30));
  const int k = 3 + static_cast<int>(rng_.UniformInt(70));  // crosses k-tile
  const int m = 2 + static_cast<int>(rng_.UniformInt(20));
  Matrix xv = Matrix::RandomNormal(n, k, 1.0, &rng_);
  Matrix wv = Matrix::RandomNormal(k, m, 1.0, &rng_);
  Matrix bv = Matrix::RandomNormal(1, m, 1.0, &rng_);
  Matrix cv = Matrix::RandomNormal(n, m, 1.0, &rng_);  // upstream gradient

  auto run = [&](bool fused) {
    Tensor x = MakeTensor(xv, true);
    Tensor w = MakeTensor(wv, true);
    Tensor b = MakeTensor(bv, true);
    Tensor y = fused ? ops::Linear(x, w, b)
                     : ops::AddRowVec(ops::MatMul(x, w), b);
    Backward(ops::SumAll(ops::Mul(y, MakeTensor(cv))));
    return std::make_tuple(y->value, x->grad, w->grad, b->grad);
  };
  auto [y_ref, gx_ref, gw_ref, gb_ref] = run(false);
  auto [y, gx, gw, gb] = run(true);
  EXPECT_TRUE(SameBits(y, y_ref));    // one-pass forward
  EXPECT_TRUE(SameBits(gx, gx_ref));  // dX = G W^T
  EXPECT_TRUE(SameBits(gw, gw_ref));  // dW = X^T G
  EXPECT_TRUE(SameBits(gb, gb_ref));  // db = colsum(G)
}

TEST_P(OpsProperty, FusedLinearPassesGradcheck) {
  Rng rng(GetParam() ^ 0x5eed);
  Tensor x = MakeTensor(Matrix::RandomNormal(4, 6, 1.0, &rng), true);
  Tensor w = MakeTensor(Matrix::RandomNormal(6, 3, 1.0, &rng), true);
  Tensor b = MakeTensor(Matrix::RandomNormal(1, 3, 1.0, &rng), true);
  bsg::testing::ExpectGradientsMatch({x, w, b}, [&] {
    Tensor y = ops::Linear(x, w, b);
    return ops::MeanAll(ops::Mul(y, y));
  });
}

TEST_P(OpsProperty, FusedAddLeakyReluMatchesUnfusedBitwise) {
  const int n = 4 + static_cast<int>(rng_.UniformInt(20));
  const int c = 3 + static_cast<int>(rng_.UniformInt(10));
  Matrix av = Matrix::RandomNormal(n, c, 1.0, &rng_);
  Matrix bv = Matrix::RandomNormal(n, c, 1.0, &rng_);
  Matrix cv = Matrix::RandomNormal(n, c, 1.0, &rng_);
  // Land some sums exactly on the activation kink, with both zero signs:
  // the fused backward recomputes a + b and must classify these the same
  // way the unfused LeakyRelu classifies its stored input.
  av(0, 0) = 1.5, bv(0, 0) = -1.5;   // +0.0 pre-activation
  av(1, 1) = -0.0, bv(1, 1) = -0.0;  // -0.0 pre-activation
  const double slope = 0.01;

  auto run = [&](bool fused) {
    Tensor a = MakeTensor(av, true);
    Tensor b = MakeTensor(bv, true);
    Tensor y = fused ? ops::AddLeakyRelu(a, b, slope)
                     : ops::LeakyRelu(ops::Add(a, b), slope);
    Backward(ops::SumAll(ops::Mul(y, MakeTensor(cv))));
    return std::make_tuple(y->value, a->grad, b->grad);
  };
  auto [y_ref, ga_ref, gb_ref] = run(false);
  auto [y, ga, gb] = run(true);
  EXPECT_TRUE(SameBits(y, y_ref));
  EXPECT_TRUE(SameBits(ga, ga_ref));
  EXPECT_TRUE(SameBits(gb, gb_ref));
}

TEST_P(OpsProperty, FusedAddReluMatchesUnfusedBitwise) {
  // slope = 0 is the sharp-relu special case: a negative pre-activation
  // zeroes the output, so the fused backward cannot read the activation
  // sign from self->value — it must recompute a + b. Pin it against
  // Relu(Add(a, b)) bitwise, forward and gradients, kink entries included.
  const int n = 4 + static_cast<int>(rng_.UniformInt(12));
  const int c = 3 + static_cast<int>(rng_.UniformInt(8));
  Matrix av = Matrix::RandomNormal(n, c, 1.0, &rng_);
  Matrix bv = Matrix::RandomNormal(n, c, 1.0, &rng_);
  Matrix cv = Matrix::RandomNormal(n, c, 1.0, &rng_);
  av(0, 0) = 2.0, bv(0, 0) = -2.0;   // exact +0.0 pre-activation
  av(1, 1) = -0.0, bv(1, 1) = -0.0;  // exact -0.0 pre-activation
  av(2, 2) = -3.0, bv(2, 2) = 1.0;   // clearly negative: output 0, grad 0

  auto run = [&](bool fused) {
    Tensor a = MakeTensor(av, true);
    Tensor b = MakeTensor(bv, true);
    Tensor y = fused ? ops::AddRelu(a, b) : ops::Relu(ops::Add(a, b));
    Backward(ops::SumAll(ops::Mul(y, MakeTensor(cv))));
    return std::make_tuple(y->value, a->grad, b->grad);
  };
  auto [y_ref, ga_ref, gb_ref] = run(false);
  auto [y, ga, gb] = run(true);
  EXPECT_TRUE(SameBits(y, y_ref));
  EXPECT_TRUE(SameBits(ga, ga_ref));
  EXPECT_TRUE(SameBits(gb, gb_ref));
}

TEST_P(OpsProperty, FusedAddLeakyReluPassesGradcheck) {
  Rng rng(GetParam() ^ 0xadd5);
  Tensor a = MakeTensor(Matrix::RandomNormal(5, 4, 1.0, &rng), true);
  Tensor b = MakeTensor(Matrix::RandomNormal(5, 4, 1.0, &rng), true);
  bsg::testing::ExpectGradientsMatch({a, b}, [&] {
    Tensor y = ops::AddLeakyRelu(a, b, 0.01);
    return ops::MeanAll(ops::Mul(y, y));
  });
}

TEST_P(OpsProperty, DropoutWithMaskSinglePassMatchesReference) {
  const int n = 6 + static_cast<int>(rng_.UniformInt(10));
  const int c = 4 + static_cast<int>(rng_.UniformInt(8));
  Tensor a = MakeTensor(Matrix::RandomNormal(n, c, 1.0, &rng_), true);
  auto mask = ops::MakeDropoutMask(a->value.size(), 0.4, &rng_);
  // Reference: the historical copy-then-multiply sequence.
  Matrix ref = a->value;
  for (size_t i = 0; i < ref.size(); ++i) ref.data()[i] *= (*mask)[i];

  Tensor y = ops::DropoutWithMask(a, mask);
  EXPECT_TRUE(SameBits(y->value, ref));
  Backward(ops::SumAll(y));
  for (size_t i = 0; i < a->grad.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->grad.data()[i], (*mask)[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace bsg
